/**
 * @file
 * Exhaustive reachability explorer over a protocol specification.
 *
 * The explorer enumerates every global state a small configuration
 * (2-4 processors x 1-2 cache slots x 1-2 addresses, plus a bounded
 * per-processor bypass write buffer) can reach under a SchemeSpec's
 * transition tables, breadth-first, and checks the protocol's safety
 * invariants at every state:
 *
 *  - SWMR: an Exclusive/Modified copy is the only valid copy;
 *  - no Exclusive state under MSI;
 *  - data value: every valid copy holds the newest data, and memory
 *    does when no Modified copy or buffered line write exists (so a
 *    silently dropped dirty line, a missed invalidation, or a missed
 *    update is caught as staleness, not just as a state-shape bug);
 *  - write-buffer consistency: buffered bypass lines drain FIFO,
 *    never exceed the configured depth, and no cache holds a valid
 *    copy of a buffer-pending line (the forwarding guarantee);
 *  - no stuck states.
 *
 * Data values are abstracted to freshness bits (per-copy and
 * per-address-in-memory), which keeps the state space finite while
 * still distinguishing "has the newest value" from "stale".
 *
 * States are canonicalized by sorting the per-processor encodings
 * (the processors are interchangeable: same caches, same tables), so
 * symmetric interleavings collapse to one representative; see
 * DESIGN.md for the soundness argument.
 *
 * On a violation the BFS parent chain is rebuilt into the initiating
 * event path, and realizeCounterexample() lowers that path to a
 * replayable trace (one memory record or block operation per step,
 * idle-padded so the engine's min-time scheduler reproduces exactly
 * the explored interleaving) that oscache-dft's oracle differ and the
 * conformance extractor can replay dynamically.
 */

#ifndef OSCACHE_VERIF_EXPLORE_HH
#define OSCACHE_VERIF_EXPLORE_HH

#include <cstdint>
#include <vector>

#include "check/finding.hh"
#include "core/blockop/schemes.hh"
#include "mem/config.hh"
#include "trace/trace.hh"
#include "verif/spec.hh"

namespace oscache
{
namespace verif
{

/** Size of the explored configuration. */
struct ExploreConfig
{
    /** Processors (2..4). */
    unsigned cpus = 2;
    /** Distinct line addresses (1..2). */
    unsigned addrs = 2;
    /**
     * Cache slots (sets) per processor (1..2).  Addresses whose
     * index collides modulo this conflict: filling one evicts the
     * other, which is how replacement edges are explored.
     */
    unsigned sets = 1;
    /** Modeled bypass write-buffer entries per processor (0..2). */
    unsigned wbDepth = 2;
    /**
     * Sockets of the two-level interconnect (must divide cpus; 1 =
     * flat bus).  The home-node directory filter is precise, so the
     * protocol tables are socket-blind and the reachable state space
     * is the same; what changes is the symmetry group used for
     * canonicalization (only within-socket and whole-socket-block
     * permutations are automorphisms of the filtered machine) and the
     * cross-socket annotation on SWMR findings.
     */
    unsigned sockets = 1;
};

/** One initiating step of the explored system. */
struct ExploreStep
{
    enum class Op : std::uint8_t
    {
        Read,        ///< Processor load.
        Write,       ///< Processor store.
        Evict,       ///< Replacement of a resident line.
        Drain,       ///< Drain one bypass write-buffer entry.
        BypassWrite, ///< Blk_Bypass full-line destination write.
        BypassRead,  ///< Blk_Bypass source read (no allocation).
        DmaZero,     ///< Blk_Dma zero of a line.
        DmaCopy,     ///< Blk_Dma copy between two addresses.
    };

    std::uint8_t cpu = 0;
    Op op = Op::Read;
    std::uint8_t addr = 0;  ///< Primary (destination) address index.
    std::uint8_t addr2 = 0; ///< DmaCopy source address index.
};

/** Human-readable rendering of one step. */
std::string formatStep(const ExploreStep &step);

/** Outcome of an exhaustive exploration. */
struct ExploreResult
{
    /** Canonical states reached (including the initial state). */
    std::uint64_t states = 0;
    /** Transitions (edges) examined. */
    std::uint64_t transitions = 0;
    /** Invariant violations; empty on a clean run. */
    std::vector<CheckFinding> findings;
    /** Initiating-step path from reset to the first violation. */
    std::vector<ExploreStep> path;

    bool ok() const { return findings.empty(); }
};

/**
 * Exhaustively explore @p spec under @p cfg.  Stops at the first
 * invariant violation (with the path populated); otherwise visits
 * the entire reachable space.
 */
ExploreResult explore(const SchemeSpec &spec, const ExploreConfig &cfg);

/**
 * A violation path lowered to a concrete replayable system: a v3
 * trace over a tiny direct-mapped machine, plus the block-operation
 * scheme the replay must use.
 */
struct Counterexample
{
    Trace trace;
    MachineConfig machine;
    BlockScheme blockScheme = BlockScheme::Base;
    /** Model address index -> concrete line address. */
    std::vector<Addr> addrOf;

    Counterexample() : trace(1) {}
};

/**
 * Lower @p path (as returned by explore()) to a replayable trace.
 * Each step becomes one memory record or block operation on its
 * initiating processor, scheduled into its own exclusive time slot
 * with idle padding so the replay engine serializes the steps in
 * exactly the explored order.
 */
Counterexample realizeCounterexample(const SchemeSpec &spec,
                                     const ExploreConfig &cfg,
                                     const std::vector<ExploreStep> &path);

} // namespace verif
} // namespace oscache

#endif // OSCACHE_VERIF_EXPLORE_HH
