#include "verif/spec.hh"

#include <sstream>

#include "common/log.hh"

namespace oscache
{
namespace verif
{

namespace
{

constexpr std::array<SchemeSpec, numSchemes> allSpecs = {
    buildSpec(ProtoScheme::Mesi),       buildSpec(ProtoScheme::Msi),
    buildSpec(ProtoScheme::MesiUpdate), buildSpec(ProtoScheme::MesiBypass),
    buildSpec(ProtoScheme::MesiDma),
};

constexpr LineState allStates[numLineStates] = {
    LineState::Invalid,
    LineState::Shared,
    LineState::Exclusive,
    LineState::Modified,
};

} // namespace

const SchemeSpec &
schemeSpec(ProtoScheme scheme)
{
    const auto index = static_cast<std::size_t>(scheme);
    if (index >= numSchemes)
        panic("schemeSpec: bad scheme ", index);
    return allSpecs[index];
}

SchemeSpec
makeSchemeSpec(ProtoScheme scheme)
{
    return schemeSpec(scheme);
}

std::size_t
observableTransitions(const SchemeSpec &spec)
{
    std::size_t n = 0;
    for (LineState state : allStates) {
        for (std::size_t e = 0; e < numEvents; ++e) {
            const auto event = static_cast<ProtoEvent>(e);
            const ProtoTransition &cell = spec.at(state, event);
            if (spec.hasEvent(event) && cell.legal && cell.next != state)
                ++n;
        }
    }
    return n;
}

std::string
validateSpec(const SchemeSpec &spec)
{
    std::ostringstream os;
    for (LineState state : allStates) {
        for (std::size_t e = 0; e < numEvents; ++e) {
            const auto event = static_cast<ProtoEvent>(e);
            const ProtoTransition &cell = spec.at(state, event);
            if (!spec.hasEvent(event) && cell.legal) {
                os << toString(spec.scheme) << ": out-of-scheme event "
                   << toString(event) << " legal from "
                   << toString(state);
                return os.str();
            }
            if (!cell.legal)
                continue;
            if (event == ProtoEvent::Evict &&
                state == LineState::Modified &&
                cell.action != ProtoAction::WriteBack) {
                os << toString(spec.scheme)
                   << ": Evict from Modified must write back";
                return os.str();
            }
            if (event == ProtoEvent::RemoteInval &&
                (state == LineState::Exclusive ||
                 state == LineState::Modified)) {
                os << toString(spec.scheme)
                   << ": RemoteInval legal against an owned copy";
                return os.str();
            }
            if (spec.scheme == ProtoScheme::Msi &&
                (state == LineState::Exclusive ||
                 cell.next == LineState::Exclusive)) {
                os << "Msi: Exclusive state in table ("
                   << toString(state) << ", " << toString(event) << ")";
                return os.str();
            }
            // An absent copy never changes state on a bus event.
            if (state == LineState::Invalid &&
                (event == ProtoEvent::RemoteRead ||
                 event == ProtoEvent::RemoteReadExcl ||
                 event == ProtoEvent::RemoteInval ||
                 event == ProtoEvent::RemoteUpdate ||
                 event == ProtoEvent::RemoteBypassInval) &&
                cell.next != LineState::Invalid) {
                os << toString(spec.scheme) << ": bus event "
                   << toString(event) << " fills an absent copy";
                return os.str();
            }
        }
    }
    return "";
}

std::string
specDot(const SchemeSpec &spec)
{
    std::ostringstream os;
    os << "digraph " << toString(spec.scheme) << " {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=circle];\n";
    for (LineState state : allStates)
        os << "  " << toString(state) << ";\n";
    for (LineState state : allStates) {
        for (std::size_t e = 0; e < numEvents; ++e) {
            const auto event = static_cast<ProtoEvent>(e);
            const ProtoTransition &cell = spec.at(state, event);
            if (!spec.hasEvent(event) || !cell.legal ||
                cell.next == state)
                continue;
            os << "  " << toString(state) << " -> "
               << toString(cell.next) << " [label=\""
               << toString(event);
            if (cell.action != ProtoAction::None)
                os << " / " << toString(cell.action);
            os << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string_view
toString(ProtoScheme scheme)
{
    switch (scheme) {
      case ProtoScheme::Mesi:
        return "mesi";
      case ProtoScheme::Msi:
        return "msi";
      case ProtoScheme::MesiUpdate:
        return "mesi-update";
      case ProtoScheme::MesiBypass:
        return "mesi-bypass";
      case ProtoScheme::MesiDma:
        return "mesi-dma";
      case ProtoScheme::NumSchemes:
        break;
    }
    return "unknown";
}

std::string_view
toString(ProtoEvent event)
{
    switch (event) {
      case ProtoEvent::LoadHit:
        return "LoadHit";
      case ProtoEvent::LoadMissShared:
        return "LoadMissShared";
      case ProtoEvent::LoadMissAlone:
        return "LoadMissAlone";
      case ProtoEvent::StoreHit:
        return "StoreHit";
      case ProtoEvent::StoreShared:
        return "StoreShared";
      case ProtoEvent::StoreMiss:
        return "StoreMiss";
      case ProtoEvent::StoreUpdateFill:
        return "StoreUpdateFill";
      case ProtoEvent::StoreUpdateShared:
        return "StoreUpdateShared";
      case ProtoEvent::StoreUpdateAlone:
        return "StoreUpdateAlone";
      case ProtoEvent::Evict:
        return "Evict";
      case ProtoEvent::BypassWrite:
        return "BypassWrite";
      case ProtoEvent::RemoteRead:
        return "RemoteRead";
      case ProtoEvent::RemoteReadExcl:
        return "RemoteReadExcl";
      case ProtoEvent::RemoteInval:
        return "RemoteInval";
      case ProtoEvent::RemoteUpdate:
        return "RemoteUpdate";
      case ProtoEvent::RemoteBypassInval:
        return "RemoteBypassInval";
      case ProtoEvent::DmaDestWrite:
        return "DmaDestWrite";
      case ProtoEvent::DmaSourceRead:
        return "DmaSourceRead";
      case ProtoEvent::NumEvents:
        break;
    }
    return "unknown";
}

std::string_view
toString(ProtoAction action)
{
    switch (action) {
      case ProtoAction::None:
        return "none";
      case ProtoAction::BusRead:
        return "BusRead";
      case ProtoAction::BusReadExcl:
        return "BusReadExcl";
      case ProtoAction::BusInval:
        return "BusInval";
      case ProtoAction::BusUpdate:
        return "BusUpdate";
      case ProtoAction::WriteBack:
        return "WriteBack";
      case ProtoAction::SupplyData:
        return "SupplyData";
      case ProtoAction::BlockWrite:
        return "BlockWrite";
      case ProtoAction::NumActions:
        break;
    }
    return "unknown";
}

std::string_view
toString(LineState state)
{
    switch (state) {
      case LineState::Invalid:
        return "I";
      case LineState::Shared:
        return "S";
      case LineState::Exclusive:
        return "E";
      case LineState::Modified:
        return "M";
    }
    return "?";
}

bool
parseScheme(std::string_view name, ProtoScheme &out)
{
    for (std::size_t i = 0; i < numSchemes; ++i) {
        const auto scheme = static_cast<ProtoScheme>(i);
        if (name == toString(scheme)) {
            out = scheme;
            return true;
        }
    }
    return false;
}

} // namespace verif
} // namespace oscache
