/**
 * @file
 * Implementation-conformance extraction.
 *
 * The conformance pass answers "does the engine in src/mem implement
 * the declarative tables in src/verif/spec.hh?" by tapping the
 * MemEventObserver hooks during a real replay, classifying every
 * observed secondary-cache transition into a protocol event, and
 * diffing the observed (state, event) -> state edge against the
 * scheme's table:
 *
 *  - an observed edge the table forbids (unknown event, illegal cell,
 *    or a different next state) becomes a ForbiddenTransition finding
 *    in the src/check Finding format;
 *  - a legal state-changing spec edge never observed is reported as
 *    unexercised coverage.
 *
 * Classification context comes from the operation-begin taps: the
 * initiating processor, the operation kind, the target line, and the
 * initiator's pre-operation state (which disambiguates a remote
 * invalidation caused by an upgrade from one caused by a write miss).
 * DMA transitions are classified by the in-flight descriptor's source
 * and destination ranges.  The engine elides same-state notifications,
 * so the coverage denominator is the spec's *state-changing* legal
 * edges (observableTransitions()).
 */

#ifndef OSCACHE_VERIF_CONFORM_HH
#define OSCACHE_VERIF_CONFORM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/finding.hh"
#include "core/blockop/schemes.hh"
#include "mem/config.hh"
#include "mem/observer.hh"
#include "trace/trace.hh"
#include "verif/spec.hh"

namespace oscache
{
namespace verif
{

/** Outcome of a conformance extraction. */
struct ConformReport
{
    /** Classified state-changing transitions observed. */
    std::uint64_t observed = 0;
    /** Observed transitions the spec forbids (total). */
    std::uint64_t forbidden = 0;
    /** Detailed findings for the first forbidden transitions. */
    std::vector<CheckFinding> findings;
    /** Legal state-changing spec edges (coverage denominator). */
    std::size_t specTotal = 0;
    /** Spec edges exercised by the observed transitions. */
    std::size_t specCovered = 0;
    /** Human-readable names of the unexercised spec edges. */
    std::vector<std::string> uncovered;

    double
    coverage() const
    {
        return specTotal == 0
                   ? 1.0
                   : double(specCovered) / double(specTotal);
    }
};

/**
 * Observer that extracts (state, event) -> state transitions from a
 * running MemorySystem and diffs them against a SchemeSpec.  Attach
 * with setObserver(); reusable across several replays (coverage and
 * findings accumulate) via attach()/report().
 */
class ConformanceExtractor : public MemEventObserver
{
  public:
    explicit ConformanceExtractor(const SchemeSpec &spec);

    /** Point the extractor at the replay's memory system. */
    void attach(const MemorySystem &mem) { memsys = &mem; }

    void onOperationBegin(const MemorySystem &mem, MemOpKind op,
                          CpuId cpu, Addr addr) override;
    void onDmaBegin(CpuId cpu, const BlockOp &op) override;
    void onOperationEnd(const MemorySystem &mem, MemOpKind op,
                        CpuId cpu, Addr addr) override;
    void onL2Transition(CpuId cpu, Addr l2_line, LineState from,
                        LineState to) override;

    /** Accumulated verdict (callable at any point). */
    ConformReport report() const;

  private:
    void classify(CpuId cpu, Addr line, LineState from, LineState to);
    void record(CpuId cpu, Addr line, LineState from, ProtoEvent event,
                LineState to);
    bool otherSharerExists(CpuId cpu, Addr line) const;

    const SchemeSpec &spec;
    const MemorySystem *memsys = nullptr;

    /** The in-flight processor-side operation. */
    struct OpContext
    {
        MemOpKind kind = MemOpKind::Read;
        CpuId cpu = 0;
        Addr line = invalidAddr;
        /** Initiator's pre-operation state was Shared (upgrade). */
        bool hadShared = false;
        bool active = false;
    } op;

    /** The in-flight DMA descriptor's line ranges. */
    struct DmaContext
    {
        Addr srcBegin = 0, srcEnd = 0;
        Addr dstBegin = 0, dstEnd = 0;
        bool active = false;
    } dma;

    bool covered[numLineStates][numEvents] = {};
    std::uint64_t observed = 0;
    std::uint64_t forbidden = 0;
    std::vector<CheckFinding> findings;
    static constexpr std::size_t maxFindings = 32;
};

/**
 * Replay @p trace on a machine built from @p machine with block scheme
 * @p blockScheme, extracting conformance against @p spec.
 */
ConformReport conformTrace(const SchemeSpec &spec, const Trace &trace,
                           const MachineConfig &machine,
                           BlockScheme blockScheme);

/** Machine configuration a scheme's conformance replay uses. */
MachineConfig conformMachine(ProtoScheme scheme);

/** Block-operation scheme a protocol scheme's replay uses. */
BlockScheme conformBlockScheme(ProtoScheme scheme);

/**
 * Run the full conformance suite for @p scheme: the four paper
 * workloads, each replayed on the default machine and on a small-cache
 * variant (which exercises the replacement edges), accumulating one
 * report.  @p quanta overrides the workload length when nonzero
 * (smaller is faster; 0 uses each profile's default).  @p sockets > 1
 * replays on the two-level interconnect instead (must divide the
 * conformance machine's processor count); the home-node filter is
 * precise, so the same tables must hold edge for edge.
 */
ConformReport runConformance(ProtoScheme scheme, unsigned quanta = 0,
                             unsigned sockets = 1);

} // namespace verif
} // namespace oscache

#endif // OSCACHE_VERIF_CONFORM_HH
