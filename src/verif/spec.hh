/**
 * @file
 * Declarative coherence-protocol specification.
 *
 * Each scheme's per-line state machine is written down as an explicit
 * `(state, event) -> (state, action)` table, one table per scheme, in
 * the style of a Murphi rule set: the tables are data, not code, so
 * they can be exhaustively explored (explore.hh), diffed against the
 * transitions the real engine takes (conform.hh), and dumped as a
 * Graphviz graph (`oscache-verify dot`).
 *
 * Events are *context-refined*: a load miss is LoadMissShared or
 * LoadMissAlone depending on whether any other cache holds the line,
 * so the next state is a pure function of (state, event) and the
 * tables need no guards.  The refinement mirrors exactly the
 * information the engine itself consults (readFillState,
 * sharedElsewhere).
 *
 * The tables are constexpr and sized by the LineState / ProtoEvent
 * enums, so adding a state or an event fails compilation (see the
 * static_asserts here and in tests/test_verif.cc) until every scheme
 * table handles it — the same sentinel-count pattern DataCategory and
 * BusTxn use.
 */

#ifndef OSCACHE_VERIF_SPEC_HH
#define OSCACHE_VERIF_SPEC_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "mem/cache.hh"

namespace oscache
{
namespace verif
{

/**
 * Number of per-line states.  LineState has no sentinel (it is packed
 * into tag arrays), so the count is pinned to its last enumerator;
 * adding a state breaks this assert and every table size below.
 */
inline constexpr std::size_t numLineStates =
    static_cast<std::size_t>(LineState::Modified) + 1;
static_assert(numLineStates == 4,
              "LineState gained a value: extend every verif spec table");

/**
 * The five verified protocol variants.  The first two are the
 * machine-wide protocols selectable in MachineConfig; the other three
 * are the Illinois core composed with the paper's optional mechanisms
 * (Section 5.2 selective update, Section 4.2 Blk_Bypass / Blk_Dma).
 */
enum class ProtoScheme : std::uint8_t
{
    Mesi,       ///< Illinois MESI, invalidation-based.
    Msi,        ///< MSI (no Exclusive state).
    MesiUpdate, ///< MESI + Firefly word updates on update pages.
    MesiBypass, ///< MESI + Blk_Bypass cache-bypassing block writes.
    MesiDma,    ///< MESI + Blk_Dma bus-level block transfers.
    NumSchemes,
};

inline constexpr std::size_t numSchemes =
    static_cast<std::size_t>(ProtoScheme::NumSchemes);

/**
 * Protocol events, from the point of view of one cache's copy of one
 * line.  "Local" events are issued by this processor, "Remote" events
 * arrive over the bus from another processor's operation, and the Dma
 * events come from the bus-level block engine.
 */
enum class ProtoEvent : std::uint8_t
{
    /** @name Local processor events @{ */
    LoadHit,           ///< Load, line valid here.
    LoadMissShared,    ///< Load miss; some other cache holds the line.
    LoadMissAlone,     ///< Load miss; no other cache holds the line.
    StoreHit,          ///< Store, line owned (Exclusive or Modified).
    StoreShared,       ///< Store to a Shared line (upgrade).
    StoreMiss,         ///< Store miss (read-for-ownership).
    StoreUpdateFill,   ///< Update-page store miss: fetch Shared first.
    StoreUpdateShared, ///< Update-page store, other sharers exist.
    StoreUpdateAlone,  ///< Update-page store, no other sharer left.
    Evict,             ///< Replacement (or voluntary) eviction.
    BypassWrite,       ///< Own full-line cache-bypassing block write.
    /** @} */

    /** @name Bus (remote-initiated) events @{ */
    RemoteRead,        ///< Another cache's non-exclusive read.
    RemoteReadExcl,    ///< Another cache's read-for-ownership.
    RemoteInval,       ///< Address-only invalidation (upgrade).
    RemoteUpdate,      ///< Firefly word update from a remote store.
    RemoteBypassInval, ///< Remote cache-bypassing block write.
    /** @} */

    /** @name DMA engine events (Blk_Dma) @{ */
    DmaDestWrite, ///< DMA overwrites the line; copies update in place.
    DmaSourceRead, ///< DMA reads the line as a copy source.
    /** @} */

    NumEvents,
};

inline constexpr std::size_t numEvents =
    static_cast<std::size_t>(ProtoEvent::NumEvents);

/** Bus-visible consequence of a transition. */
enum class ProtoAction : std::uint8_t
{
    None,        ///< Silent (processor-local) transition.
    BusRead,     ///< Non-exclusive line read on the bus.
    BusReadExcl, ///< Read-for-ownership (invalidates other copies).
    BusInval,    ///< Address-only invalidation broadcast.
    BusUpdate,   ///< Firefly word-update broadcast.
    WriteBack,   ///< Dirty line written back to memory.
    SupplyData,  ///< Owner supplies the line; memory is updated.
    BlockWrite,  ///< Full line written to memory via the write buffer.
    NumActions,
};

/** One cell of a scheme's transition table. */
struct ProtoTransition
{
    /** False: the protocol can never take this (state, event) edge. */
    bool legal = false;
    LineState next = LineState::Invalid;
    ProtoAction action = ProtoAction::None;
};

/**
 * One scheme's complete specification: the (state, event) table plus
 * the subset of events that exist under the scheme at all.
 */
struct SchemeSpec
{
    ProtoScheme scheme = ProtoScheme::Mesi;
    /** Indexed [state][event]; every cell is meaningful. */
    std::array<std::array<ProtoTransition, numEvents>, numLineStates>
        table{};
    /** Bit i set iff ProtoEvent(i) can occur under this scheme. */
    std::uint32_t eventMask = 0;

    constexpr const ProtoTransition &
    at(LineState state, ProtoEvent event) const
    {
        return table[static_cast<std::size_t>(state)]
                    [static_cast<std::size_t>(event)];
    }

    constexpr bool
    hasEvent(ProtoEvent event) const
    {
        return (eventMask >> static_cast<unsigned>(event)) & 1u;
    }
};

static_assert(numEvents <= 32, "eventMask is a uint32_t");

/**
 * @name Constexpr table construction
 *
 * The tables are built at compile time so the unit tests can pin
 * individual cells with static_assert; schemeSpec() below hands out
 * the same tables from static storage for runtime use.
 * @{
 */

namespace detail
{

constexpr std::uint32_t
eventBit(ProtoEvent event)
{
    return 1u << static_cast<unsigned>(event);
}

/** Events common to every invalidation-based variant. */
inline constexpr std::uint32_t coreEventMask =
    eventBit(ProtoEvent::LoadHit) | eventBit(ProtoEvent::LoadMissShared) |
    eventBit(ProtoEvent::LoadMissAlone) | eventBit(ProtoEvent::StoreHit) |
    eventBit(ProtoEvent::StoreShared) | eventBit(ProtoEvent::StoreMiss) |
    eventBit(ProtoEvent::Evict) | eventBit(ProtoEvent::RemoteRead) |
    eventBit(ProtoEvent::RemoteReadExcl) | eventBit(ProtoEvent::RemoteInval);

constexpr std::uint32_t
schemeEventMask(ProtoScheme scheme)
{
    switch (scheme) {
      case ProtoScheme::Mesi:
      case ProtoScheme::Msi:
        return coreEventMask;
      case ProtoScheme::MesiUpdate:
        return coreEventMask | eventBit(ProtoEvent::StoreUpdateFill) |
               eventBit(ProtoEvent::StoreUpdateShared) |
               eventBit(ProtoEvent::StoreUpdateAlone) |
               eventBit(ProtoEvent::RemoteUpdate);
      case ProtoScheme::MesiBypass:
        return coreEventMask | eventBit(ProtoEvent::BypassWrite) |
               eventBit(ProtoEvent::RemoteBypassInval);
      case ProtoScheme::MesiDma:
        return coreEventMask | eventBit(ProtoEvent::DmaDestWrite) |
               eventBit(ProtoEvent::DmaSourceRead);
      case ProtoScheme::NumSchemes:
        break;
    }
    return 0;
}

} // namespace detail

/**
 * Build @p scheme's transition table.  Everything not explicitly
 * enabled stays `legal = false` — the protocol can never take it.
 */
constexpr SchemeSpec
buildSpec(ProtoScheme scheme)
{
    using S = LineState;
    using E = ProtoEvent;
    using A = ProtoAction;

    SchemeSpec spec{};
    spec.scheme = scheme;
    spec.eventMask = detail::schemeEventMask(scheme);

    const bool msi = scheme == ProtoScheme::Msi;
    const bool update = scheme == ProtoScheme::MesiUpdate;
    const bool bypass = scheme == ProtoScheme::MesiBypass;
    const bool dma = scheme == ProtoScheme::MesiDma;

    auto on = [&spec](S state, E event, S next, A action = A::None) {
        spec.table[static_cast<std::size_t>(state)]
                  [static_cast<std::size_t>(event)] =
            ProtoTransition{true, next, action};
    };

    // --- Invalid: fills, plus every bus event as a no-op (an absent
    // copy never reacts to snoops). ---
    on(S::Invalid, E::LoadMissShared, S::Shared, A::BusRead);
    on(S::Invalid, E::LoadMissAlone, msi ? S::Shared : S::Exclusive,
       A::BusRead);
    on(S::Invalid, E::StoreMiss, S::Modified, A::BusReadExcl);
    on(S::Invalid, E::RemoteRead, S::Invalid);
    on(S::Invalid, E::RemoteReadExcl, S::Invalid);
    on(S::Invalid, E::RemoteInval, S::Invalid);
    if (update) {
        on(S::Invalid, E::StoreUpdateFill, S::Shared, A::BusRead);
        on(S::Invalid, E::RemoteUpdate, S::Invalid);
    }
    if (bypass) {
        // A bypass write requires a non-resident destination line
        // (the executor writes through the caches otherwise), so the
        // only legal local state is Invalid.
        on(S::Invalid, E::BypassWrite, S::Invalid, A::BlockWrite);
        on(S::Invalid, E::RemoteBypassInval, S::Invalid);
    }
    if (dma) {
        on(S::Invalid, E::DmaDestWrite, S::Invalid);
        on(S::Invalid, E::DmaSourceRead, S::Invalid);
    }

    // --- Shared. ---
    on(S::Shared, E::LoadHit, S::Shared);
    on(S::Shared, E::StoreShared, S::Modified, A::BusInval);
    on(S::Shared, E::Evict, S::Invalid);
    on(S::Shared, E::RemoteRead, S::Shared);
    on(S::Shared, E::RemoteReadExcl, S::Invalid);
    on(S::Shared, E::RemoteInval, S::Invalid);
    if (update) {
        on(S::Shared, E::StoreUpdateShared, S::Shared, A::BusUpdate);
        on(S::Shared, E::StoreUpdateAlone, S::Modified);
        on(S::Shared, E::RemoteUpdate, S::Shared);
    }
    if (bypass)
        on(S::Shared, E::RemoteBypassInval, S::Invalid);
    if (dma) {
        on(S::Shared, E::DmaDestWrite, S::Shared);
        on(S::Shared, E::DmaSourceRead, S::Shared);
    }

    // --- Exclusive: does not exist under MSI (no edge enters it, no
    // event leaves it — reaching it at all is a violation). ---
    if (!msi) {
        on(S::Exclusive, E::LoadHit, S::Exclusive);
        on(S::Exclusive, E::StoreHit, S::Modified);
        on(S::Exclusive, E::Evict, S::Invalid);
        // Clean copy: memory is current, nobody supplies data.
        on(S::Exclusive, E::RemoteRead, S::Shared);
        on(S::Exclusive, E::RemoteReadExcl, S::Invalid);
        // RemoteInval (an upgrade) is illegal against E or M: the
        // upgrading writer would have to hold Shared concurrently.
        if (bypass)
            on(S::Exclusive, E::RemoteBypassInval, S::Invalid);
        if (dma) {
            on(S::Exclusive, E::DmaDestWrite, S::Shared);
            on(S::Exclusive, E::DmaSourceRead, S::Exclusive);
        }
    }

    // --- Modified. ---
    on(S::Modified, E::LoadHit, S::Modified);
    on(S::Modified, E::StoreHit, S::Modified);
    on(S::Modified, E::Evict, S::Invalid, A::WriteBack);
    on(S::Modified, E::RemoteRead, S::Shared, A::SupplyData);
    on(S::Modified, E::RemoteReadExcl, S::Invalid, A::SupplyData);
    if (bypass) {
        // The whole line is overwritten in memory; the dirty data is
        // dead by construction, so no write-back is owed.
        on(S::Modified, E::RemoteBypassInval, S::Invalid);
    }
    if (dma) {
        on(S::Modified, E::DmaDestWrite, S::Shared);
        on(S::Modified, E::DmaSourceRead, S::Shared, A::SupplyData);
    }

    return spec;
}

/** @} */

/** The specification of @p scheme (a reference into a static table). */
const SchemeSpec &schemeSpec(ProtoScheme scheme);

/** Build @p scheme's spec by value (for mutation in tests). */
SchemeSpec makeSchemeSpec(ProtoScheme scheme);

/**
 * Number of *conformance-observable* transitions in @p spec: legal,
 * state-changing cells of in-scheme events.  Self-loops are excluded
 * because the engine's observer elides them (notifyL2 only fires when
 * from != to), so they can never be witnessed dynamically.
 */
std::size_t observableTransitions(const SchemeSpec &spec);

/**
 * Structural sanity of a table, checked once per process (and by the
 * unit tests): dirty-data liveness (every legal Evict from Modified
 * writes back), upgrade sanity (RemoteInval is illegal against an
 * owned copy), MSI has no edge into Exclusive, and every cell of an
 * out-of-scheme event is illegal.  Returns an empty string when the
 * spec is well-formed, else a description of the first defect.
 */
std::string validateSpec(const SchemeSpec &spec);

/** Graphviz rendering of @p spec's legal, state-changing edges. */
std::string specDot(const SchemeSpec &spec);

/** @name Names (stable; used by the CLI and the reports) @{ */
std::string_view toString(ProtoScheme scheme);
std::string_view toString(ProtoEvent event);
std::string_view toString(ProtoAction action);
std::string_view toString(LineState state);
/** Parse a --scheme argument; returns false on unknown names. */
bool parseScheme(std::string_view name, ProtoScheme &out);
/** @} */

} // namespace verif
} // namespace oscache

#endif // OSCACHE_VERIF_SPEC_HH
