/**
 * @file
 * Unix-domain socket transport with length-prefixed JSON framing.
 *
 * The serving subsystem's one wire format: each frame is a 4-byte
 * big-endian payload length followed by that many bytes of UTF-8
 * JSON.  The length prefix makes truncation detectable (EOF mid-
 * frame is an error distinct from EOF between frames) and lets the
 * receiver enforce a hard size cap *before* buffering a hostile
 * payload.  Blocking I/O with optional receive timeouts; the daemon
 * multiplexes many connections with poll() and only ever reads a
 * connection poll() reported readable.
 *
 * Everything returns error codes rather than throwing: a peer dying
 * mid-frame is normal operation for this layer (that is exactly how
 * the coordinator notices a SIGKILL'd worker).
 */

#ifndef OSCACHE_COMMON_IPC_HH
#define OSCACHE_COMMON_IPC_HH

#include <cstdint>
#include <string>

#include "common/json.hh"

namespace oscache
{

/** Hard cap on one frame's payload (daemon and client alike). */
inline constexpr std::uint32_t maxFrameBytes = 8u * 1024 * 1024;

/** Outcome of one frame receive. */
enum class FrameResult
{
    Ok,        ///< A complete frame was read.
    Closed,    ///< Clean EOF on a frame boundary.
    Truncated, ///< EOF inside a frame: the peer died mid-send.
    Oversized, ///< Declared length exceeds maxFrameBytes.
    Timeout,   ///< Receive timeout expired before a full frame.
    Error,     ///< Socket error (errno-level).
};

const char *toString(FrameResult result);

/**
 * One connected stream socket.  Movable, closes on destruction.
 * sendFrame() is atomic with respect to other sendFrame() calls on
 * the same object only if the caller serializes; the worker's
 * heartbeat thread and main loop share a mutex for this.
 */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();

    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /** Connect to the Unix socket at @p path. */
    static Conn connectTo(const std::string &path,
                          std::string *error = nullptr);

    /** Write one frame (length prefix + payload).  False on error. */
    bool sendFrame(const std::string &payload);
    bool sendJson(const Json &message);

    /**
     * Read one frame into @p payload.  @p timeout_ms < 0 blocks
     * indefinitely; 0 polls.  On Timeout no bytes are consumed only
     * if the frame had not started arriving; a frame that started
     * but stalls past the timeout reports Timeout and poisons the
     * stream (callers drop the connection — resynchronizing a
     * half-read length prefix is not worth the complexity).
     */
    FrameResult recvFrame(std::string &payload, int timeout_ms = -1);

    /**
     * Read one frame and parse it.  Parse failures return Ok=false
     * through @p parse_ok so the daemon can answer a well-framed but
     * malformed payload with an error reply instead of dropping.
     */
    FrameResult recvJson(Json &message, bool &parse_ok,
                         std::string *parse_error = nullptr,
                         int timeout_ms = -1);

  private:
    int fd_ = -1;
};

/** Listening Unix socket; unlinks its path on destruction. */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen on @p path (unlinking a stale socket first).
     * @p backlog is the kernel accept queue — the outermost layer of
     * the daemon's backpressure story.
     */
    bool open(const std::string &path, int backlog,
              std::string *error = nullptr);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    const std::string &path() const { return path_; }

    /** Accept one connection; invalid Conn on transient failure. */
    Conn accept();

    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

/** A connected socketpair (for in-process protocol tests). */
bool makeSocketPair(Conn &a, Conn &b);

} // namespace oscache

#endif // OSCACHE_COMMON_IPC_HH
