/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — a simulator bug: something that must never happen
 *            regardless of user input.  Aborts.
 * fatal()  — a user error (bad configuration, invalid arguments).
 *            Exits with status 1.
 * warn()   — functionality that works well enough but deserves a note.
 */

#ifndef OSCACHE_COMMON_LOG_HH
#define OSCACHE_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace oscache
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Report an unrecoverable user error and exit. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Report a non-fatal condition worth the user's attention. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

} // namespace oscache

#endif // OSCACHE_COMMON_LOG_HH
