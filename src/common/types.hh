/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 *
 * The conventions mirror those of classic trace-driven memory-system
 * simulators: a byte-granular 64-bit address space, a 64-bit cycle
 * counter, and small integral identifiers for processors, basic
 * blocks, and block operations.
 */

#ifndef OSCACHE_COMMON_TYPES_HH
#define OSCACHE_COMMON_TYPES_HH

#include <cstdint>

namespace oscache
{

/** Byte-granular physical/virtual address. */
using Addr = std::uint64_t;

/** Simulation time in processor clock cycles (200 MHz in Base). */
using Cycles = std::uint64_t;

/** Signed cycle delta, for latency arithmetic. */
using CycleDelta = std::int64_t;

/** Processor identifier; the baseline machine has 4 processors. */
using CpuId = std::uint8_t;

/** Static basic-block identifier assigned by the trace generator. */
using BasicBlockId = std::uint32_t;

/** Identifier of a block operation (copy/zero) instance. */
using BlockOpId = std::uint32_t;

/** An invalid/unset address sentinel. */
inline constexpr Addr invalidAddr = ~Addr{0};

/**
 * @name Address-space regions
 * The synthetic kernel maps its data high (Concentrix-style) and the
 * trace generator places basic-block code above it; user data regions
 * live low.  The trace linter relies on these boundaries to check
 * DataCategory / address-region consistency, so they are shared here
 * rather than buried in the layout and simulator.
 * @{
 */
/** Base of the kernel data segment. */
inline constexpr Addr kernelSpaceBase = 0x8000'0000;
/** Base of the synthetic code segment (one 4-KB page per block). */
inline constexpr Addr codeSpaceBase = 0xc000'0000;
/** @} */

/** An invalid basic-block sentinel. */
inline constexpr BasicBlockId invalidBasicBlock = ~BasicBlockId{0};

/**
 * Return the greatest power-of-two-aligned address not above @p addr.
 *
 * @param addr  Address to align.
 * @param align Power-of-two alignment in bytes.
 */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    return addr & ~(align - 1);
}

/** Return the smallest @p align-aligned address not below @p addr. */
constexpr Addr
alignUp(Addr addr, Addr align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True iff @p value is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

} // namespace oscache

#endif // OSCACHE_COMMON_TYPES_HH
