/**
 * @file
 * Minimal JSON value, parser, and serializer.
 *
 * The serving layer speaks length-prefixed JSON frames between the
 * daemon, its worker processes, and remote clients, so it needs to
 * *read* JSON — everything before it only wrote JSON with ad-hoc
 * ostringstream code.  This is a small, strict recursive-descent
 * implementation: UTF-8 pass-through, \uXXXX escapes decoded to
 * UTF-8, a hard recursion-depth cap so a hostile frame cannot blow
 * the stack, and precise error messages carrying the byte offset
 * (protocol tests assert on rejection, not just acceptance).
 *
 * Numbers are held as double (plus an exact int64 view when the
 * text was integral); object member order is preserved so dumps are
 * deterministic and framing tests can compare bytes.
 */

#ifndef OSCACHE_COMMON_JSON_HH
#define OSCACHE_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace oscache
{

/** One JSON value; a tagged tree. */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d), int_(std::int64_t(d)) {}
    Json(std::int64_t i)
        : type_(Type::Number), num_(double(i)), int_(i), integral_(true)
    {}
    Json(int i) : Json(std::int64_t(i)) {}
    Json(unsigned u) : Json(std::int64_t(u)) {}
    Json(std::uint64_t u) : Json(std::int64_t(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array / object, for building values imperatively. */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; defaulted, never throwing. */
    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    std::int64_t asInt(std::int64_t fallback = 0) const;
    const std::string &asString() const; // empty string fallback

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t index) const; // null fallback
    void push(Json value);

    /**
     * Object access.  get() returns a shared null for missing keys,
     * so chained lookups are safe; set() replaces or appends,
     * preserving first-insertion order.
     */
    const Json &get(const std::string &key) const;
    bool has(const std::string &key) const;
    void set(const std::string &key, Json value);
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Serialize (compact, deterministic member order). */
    std::string dump() const;

    /**
     * Parse @p text; returns nullopt-style result: ok() false means
     * @p error (when non-null) holds "byte N: reason".  Trailing
     * non-whitespace after the value is an error.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool integral_ = false;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscapeString(const std::string &s);

} // namespace oscache

#endif // OSCACHE_COMMON_JSON_HH
