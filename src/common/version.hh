/**
 * @file
 * Build identification shared by every CLI's `--version` flag.
 */

#ifndef OSCACHE_COMMON_VERSION_HH
#define OSCACHE_COMMON_VERSION_HH

#include <string>

namespace oscache
{

/**
 * One-line build identifier: "oscache <git describe> (<build type>)",
 * e.g. "oscache 375a6e9-dirty (RelWithDebInfo+address)".
 */
std::string versionString();

} // namespace oscache

#endif // OSCACHE_COMMON_VERSION_HH
