#include "common/ipc.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oscache
{

namespace
{

/**
 * Read exactly @p size bytes.  Returns Ok, Closed (EOF before the
 * first byte), Truncated (EOF after some bytes), Timeout, or Error.
 */
FrameResult
readExactly(int fd, void *buffer, std::size_t size, int timeout_ms)
{
    auto *p = static_cast<unsigned char *>(buffer);
    std::size_t got = 0;
    while (got < size) {
        if (timeout_ms >= 0) {
            struct pollfd pfd = {fd, POLLIN, 0};
            const int r = ::poll(&pfd, 1, timeout_ms);
            if (r == 0)
                return FrameResult::Timeout;
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return FrameResult::Error;
            }
        }
        const ssize_t n = ::read(fd, p + got, size - got);
        if (n == 0)
            return got == 0 ? FrameResult::Closed
                            : FrameResult::Truncated;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameResult::Error;
        }
        got += static_cast<std::size_t>(n);
    }
    return FrameResult::Ok;
}

bool
writeFully(int fd, const void *buffer, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(buffer);
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::write(fd, p + sent, size - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE et al.: peer is gone.
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string *error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "socket path too long (" +
                     std::to_string(path.size()) + " bytes, max " +
                     std::to_string(sizeof(addr.sun_path) - 1) + ")";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

const char *
toString(FrameResult result)
{
    switch (result) {
      case FrameResult::Ok: return "ok";
      case FrameResult::Closed: return "closed";
      case FrameResult::Truncated: return "truncated";
      case FrameResult::Oversized: return "oversized";
      case FrameResult::Timeout: return "timeout";
      case FrameResult::Error: return "error";
    }
    return "?";
}

Conn::~Conn()
{
    close();
}

Conn::Conn(Conn &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Conn &
Conn::operator=(Conn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Conn
Conn::connectTo(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return Conn();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::strerror(errno);
        return Conn();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (error != nullptr)
            *error = std::strerror(errno);
        ::close(fd);
        return Conn();
    }
    return Conn(fd);
}

bool
Conn::sendFrame(const std::string &payload)
{
    if (fd_ < 0 || payload.size() > maxFrameBytes)
        return false;
    const auto len = std::uint32_t(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    // One buffer, one write-loop: a frame is never visible half-sent
    // to an interleaving sender on another fd.
    std::string wire;
    wire.reserve(payload.size() + 4);
    wire.append(reinterpret_cast<const char *>(prefix), 4);
    wire.append(payload);
    return writeFully(fd_, wire.data(), wire.size());
}

bool
Conn::sendJson(const Json &message)
{
    return sendFrame(message.dump());
}

FrameResult
Conn::recvFrame(std::string &payload, int timeout_ms)
{
    if (fd_ < 0)
        return FrameResult::Error;
    unsigned char prefix[4];
    FrameResult r = readExactly(fd_, prefix, 4, timeout_ms);
    if (r != FrameResult::Ok)
        return r;
    const std::uint32_t len = (std::uint32_t(prefix[0]) << 24) |
                              (std::uint32_t(prefix[1]) << 16) |
                              (std::uint32_t(prefix[2]) << 8) |
                              std::uint32_t(prefix[3]);
    if (len > maxFrameBytes)
        return FrameResult::Oversized;
    payload.resize(len);
    if (len == 0)
        return FrameResult::Ok;
    r = readExactly(fd_, payload.data(), len, timeout_ms);
    // EOF after the prefix is truncation even at byte 0 of the body.
    return r == FrameResult::Closed ? FrameResult::Truncated : r;
}

FrameResult
Conn::recvJson(Json &message, bool &parse_ok, std::string *parse_error,
               int timeout_ms)
{
    std::string payload;
    const FrameResult r = recvFrame(payload, timeout_ms);
    if (r != FrameResult::Ok) {
        parse_ok = false;
        return r;
    }
    parse_ok = Json::parse(payload, message, parse_error);
    return FrameResult::Ok;
}

Listener::~Listener()
{
    close();
}

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_))
{
    other.fd_ = -1;
    other.path_.clear();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        other.fd_ = -1;
        other.path_.clear();
    }
    return *this;
}

bool
Listener::open(const std::string &path, int backlog, std::string *error)
{
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str()); // stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        if (error != nullptr)
            *error = std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

Conn
Listener::accept()
{
    if (fd_ < 0)
        return Conn();
    const int fd = ::accept(fd_, nullptr, nullptr);
    return fd >= 0 ? Conn(fd) : Conn();
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (!path_.empty())
            ::unlink(path_.c_str());
        path_.clear();
    }
}

bool
makeSocketPair(Conn &a, Conn &b)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;
    a = Conn(fds[0]);
    b = Conn(fds[1]);
    return true;
}

} // namespace oscache
