/**
 * @file
 * Checksummed binary stream primitives shared by every on-disk
 * format in the repo: the trace serializers (v2/v3, src/trace) and
 * the live-points checkpoint store (v1, src/sample).
 *
 * A writer mixes every byte it emits into a streaming FNV-1a sum so
 * the file can end with a self-describing checksum; the reader
 * accumulates the same sum while parsing, so truncation and bit rot
 * are both caught on reload without a second pass.
 */

#ifndef OSCACHE_COMMON_BINIO_HH
#define OSCACHE_COMMON_BINIO_HH

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>

namespace oscache
{
namespace binio
{

/** Streaming FNV-1a over every byte written (or read). */
class ChecksumStream
{
  public:
    void
    mix(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state ^= bytes[i];
            state *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ull;
};

class BinaryWriter
{
  public:
    explicit BinaryWriter(std::ostream &out) : os(out) {}

    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        char buf[sizeof(T)];
        std::memcpy(buf, &value, sizeof(T));
        os.write(buf, sizeof(T));
        sum.mix(buf, sizeof(T));
    }

    std::uint64_t checksum() const { return sum.value(); }

  private:
    std::ostream &os;
    ChecksumStream sum;
};

class BinaryReader
{
  public:
    explicit BinaryReader(std::istream &in) : is(in) {}

    template <typename T>
    bool
    get(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        char buf[sizeof(T)];
        is.read(buf, sizeof(T));
        if (is.gcount() != std::streamsize(sizeof(T)))
            return false;
        std::memcpy(&value, buf, sizeof(T));
        sum.mix(buf, sizeof(T));
        return true;
    }

    std::uint64_t checksum() const { return sum.value(); }

  private:
    std::istream &is;
    ChecksumStream sum;
};

} // namespace binio
} // namespace oscache

#endif // OSCACHE_COMMON_BINIO_HH
