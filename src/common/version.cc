#include "common/version.hh"

namespace oscache
{

#ifndef OSCACHE_GIT_DESCRIBE
#define OSCACHE_GIT_DESCRIBE "unknown"
#endif
#ifndef OSCACHE_BUILD_FLAVOR
#define OSCACHE_BUILD_FLAVOR "unknown"
#endif

std::string
versionString()
{
    return std::string("oscache ") + OSCACHE_GIT_DESCRIBE + " (" +
           OSCACHE_BUILD_FLAVOR + ")";
}

} // namespace oscache
