#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace oscache
{

namespace
{

/** Shared immutable null for safe missing-key chaining. */
const Json &
nullValue()
{
    static const Json null;
    return null;
}

const std::string &
emptyString()
{
    static const std::string empty;
    return empty;
}

/** Nesting depth cap: frames come from untrusted peers. */
constexpr int maxParseDepth = 64;

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &why)
    {
        if (error.empty()) {
            std::ostringstream os;
            os << "byte " << pos << ": " << why;
            error = os.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += len;
        return true;
    }

    /** Append @p cp to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(unsigned &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                return fail("truncated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  if (!hex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp < 0xDC00) {
                      // High surrogate: require the low half.
                      if (pos + 1 >= text.size() || text[pos] != '\\' ||
                          text[pos + 1] != 'u')
                          return fail("unpaired surrogate");
                      pos += 2;
                      unsigned low = 0;
                      if (!hex4(low))
                          return false;
                      if (low < 0xDC00 || low > 0xDFFF)
                          return fail("bad low surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (low - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      return fail("unpaired surrogate");
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                  return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !(text[pos] >= '0' && text[pos] <= '9'))
            return fail("malformed number");
        // Leading zero may not be followed by digits (strict JSON).
        if (text[pos] == '0' && pos + 1 < text.size() &&
            text[pos + 1] >= '0' && text[pos + 1] <= '9')
            return fail("leading zero");
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
        bool integral = true;
        if (pos < text.size() && text[pos] == '.') {
            integral = false;
            ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("digits required after decimal point");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !(text[pos] >= '0' && text[pos] <= '9'))
                return fail("digits required in exponent");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        const std::string image = text.substr(start, pos - start);
        if (integral) {
            errno = 0;
            const long long v = std::strtoll(image.c_str(), nullptr, 10);
            if (errno == 0) {
                out = Json(std::int64_t(v));
                return true;
            }
        }
        out = Json(std::strtod(image.c_str(), nullptr));
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > maxParseDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        switch (c) {
          case 'n':
              if (!literal("null"))
                  return false;
              out = Json();
              return true;
          case 't':
              if (!literal("true"))
                  return false;
              out = Json(true);
              return true;
          case 'f':
              if (!literal("false"))
                  return false;
              out = Json(false);
              return true;
          case '"': {
              std::string s;
              if (!parseString(s))
                  return false;
              out = Json(std::move(s));
              return true;
          }
          case '[': {
              ++pos;
              out = Json::array();
              skipSpace();
              if (pos < text.size() && text[pos] == ']') {
                  ++pos;
                  return true;
              }
              while (true) {
                  Json element;
                  if (!parseValue(element, depth + 1))
                      return false;
                  out.push(std::move(element));
                  skipSpace();
                  if (pos >= text.size())
                      return fail("unterminated array");
                  if (text[pos] == ',') {
                      ++pos;
                      continue;
                  }
                  if (text[pos] == ']') {
                      ++pos;
                      return true;
                  }
                  return fail("expected ',' or ']'");
              }
          }
          case '{': {
              ++pos;
              out = Json::object();
              skipSpace();
              if (pos < text.size() && text[pos] == '}') {
                  ++pos;
                  return true;
              }
              while (true) {
                  skipSpace();
                  if (pos >= text.size() || text[pos] != '"')
                      return fail("expected member name");
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipSpace();
                  if (pos >= text.size() || text[pos] != ':')
                      return fail("expected ':'");
                  ++pos;
                  Json value;
                  if (!parseValue(value, depth + 1))
                      return false;
                  out.set(key, std::move(value));
                  skipSpace();
                  if (pos >= text.size())
                      return fail("unterminated object");
                  if (text[pos] == ',') {
                      ++pos;
                      continue;
                  }
                  if (text[pos] == '}') {
                      ++pos;
                      return true;
                  }
                  return fail("expected ',' or '}'");
              }
          }
          case '-':
          case '0':
          case '1':
          case '2':
          case '3':
          case '4':
          case '5':
          case '6':
          case '7':
          case '8':
          case '9':
              return parseNumber(out);
          default:
              return fail("unexpected character");
        }
    }
};

void
dumpTo(const Json &value, std::string &out)
{
    switch (value.type()) {
      case Json::Type::Null:
          out += "null";
          break;
      case Json::Type::Bool:
          out += value.asBool() ? "true" : "false";
          break;
      case Json::Type::Number: {
          const double d = value.asDouble();
          if (double(value.asInt()) == d &&
              std::fabs(d) < 9.0e18) { // exact integral
              char buf[32];
              std::snprintf(buf, sizeof buf, "%lld",
                            static_cast<long long>(value.asInt()));
              out += buf;
          } else {
              char buf[40];
              std::snprintf(buf, sizeof buf, "%.17g", d);
              out += buf;
          }
          break;
      }
      case Json::Type::String:
          out += '"';
          out += jsonEscapeString(value.asString());
          out += '"';
          break;
      case Json::Type::Array: {
          out += '[';
          for (std::size_t i = 0; i < value.size(); ++i) {
              if (i > 0)
                  out += ',';
              dumpTo(value.at(i), out);
          }
          out += ']';
          break;
      }
      case Json::Type::Object: {
          out += '{';
          bool first = true;
          for (const auto &[key, member] : value.members()) {
              if (!first)
                  out += ',';
              first = false;
              out += '"';
              out += jsonEscapeString(key);
              out += "\":";
              dumpTo(member, out);
          }
          out += '}';
          break;
      }
    }
}

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

double
Json::asDouble(double fallback) const
{
    return type_ == Type::Number ? num_ : fallback;
}

std::int64_t
Json::asInt(std::int64_t fallback) const
{
    if (type_ != Type::Number)
        return fallback;
    return integral_ ? int_ : std::int64_t(num_);
}

const std::string &
Json::asString() const
{
    return type_ == Type::String ? str_ : emptyString();
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::Array || index >= arr_.size())
        return nullValue();
    return arr_[index];
}

void
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    arr_.push_back(std::move(value));
}

const Json &
Json::get(const std::string &key) const
{
    if (type_ == Type::Object) {
        for (const auto &[k, v] : obj_)
            if (k == key)
                return v;
    }
    return nullValue();
}

bool
Json::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : obj_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &[k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    obj_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    static const std::vector<std::pair<std::string, Json>> empty;
    return type_ == Type::Object ? obj_ : empty;
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser p(text);
    if (!p.parseValue(out, 0)) {
        if (error != nullptr)
            *error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        p.fail("trailing content after value");
        if (error != nullptr)
            *error = p.error;
        return false;
    }
    return true;
}

std::string
jsonEscapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
              if (static_cast<unsigned char>(c) < 0x20) {
                  char buf[8];
                  std::snprintf(buf, sizeof buf, "\\u%04x", c);
                  out += buf;
              } else {
                  out += c;
              }
        }
    }
    return out;
}

} // namespace oscache
