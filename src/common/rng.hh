/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator.
 *
 * Two generators are provided: SplitMix64, used for seeding, and
 * Xoshiro256StarStar, the workhorse.  Both are tiny, fast, and fully
 * deterministic across platforms, which keeps every experiment
 * reproducible bit-for-bit from a workload seed.
 */

#ifndef OSCACHE_COMMON_RNG_HH
#define OSCACHE_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/log.hh"

namespace oscache
{

/**
 * SplitMix64: a 64-bit generator whose main role here is expanding a
 * single user seed into the four state words of Xoshiro256StarStar.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Return the next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman and Vigna: fast, high-quality, and with a
 * period of 2^256 - 1.  All stochastic decisions in the synthetic
 * workload generator draw from an instance of this class.
 */
class Xoshiro256StarStar
{
  public:
    /** Seed via SplitMix64 expansion, per the authors' recommendation. */
    explicit Xoshiro256StarStar(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : state)
            word = sm.next();
    }

    /** Return the next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;

        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);

        return result;
    }

    /**
     * Return a uniformly distributed integer in [0, bound).
     * Uses Lemire's multiply-shift reduction; the slight modulo bias
     * is below 2^-32 for the small bounds used here.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Xoshiro256StarStar::below called with bound 0");
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Return a uniformly distributed integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Xoshiro256StarStar::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Return a uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high-quality bits into the mantissa.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish burst length: 1 + number of successes of repeated
     * trials with continuation probability @p p, capped at @p cap.
     */
    std::uint64_t
    burst(double p, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state{};
};

/** The project-wide default RNG type. */
using Rng = Xoshiro256StarStar;

} // namespace oscache

#endif // OSCACHE_COMMON_RNG_HH
