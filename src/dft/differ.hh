/**
 * @file
 * Access-by-access differ between the production MemorySystem and the
 * dft reference model.
 *
 * OracleDiffer attaches to a MemorySystem as its event observer and
 * replays every reported operation through a ReferenceMachine.  For
 * each data read and software prefetch it compares the engine's
 * hit/miss verdict, miss-cause classification, and service level with
 * the reference prediction; after every operation it cross-checks the
 * secondary-line states and primary residency of the touched line on
 * all processors directly against the engine's tag arrays, and
 * finish() audits every line either model ever touched.  The first
 * divergence is captured with the full event context (a dump of the
 * record, both models' line states, and the event index) and all
 * further checking stops.
 *
 * Timing-only outcomes are handled with accept-either rules rather
 * than guesses: an in-flight merge must match the cause recorded when
 * the prefetch issued; a Blk_ByPref buffer read may report buffer-hit
 * or partial-hiding depending on readiness, both accepted when the
 * line is in the reference buffer; a dropped prefetch (busy MSHRs) is
 * accepted verbatim since neither machine changes state.
 *
 * runDiff() wires a complete engine run — MemorySystem, block-scheme
 * executor, System — around the differ for a given trace source.
 * Restrictions: direct-mapped caches (l1Ways == l2Ways == 1) and the
 * statistical instruction-miss model (modelICache == false); both are
 * enforced fatally, since the reference model supports nothing else.
 */

#ifndef OSCACHE_DFT_DIFFER_HH
#define OSCACHE_DFT_DIFFER_HH

#include <cstdint>
#include <string>

#include "core/blockop/schemes.hh"
#include "dft/oracle.hh"
#include "mem/memsys.hh"
#include "mem/observer.hh"
#include "sim/options.hh"
#include "sim/sampling.hh"
#include "sim/stats.hh"
#include "trace/source.hh"

namespace oscache
{
namespace dft
{

/**
 * The observer half of the differ.  Attach with mem.setObserver()
 * (or through a MemEventObserverMux) before the run, drive the run,
 * then call finish() for the end-of-run audit.
 */
class OracleDiffer : public MemEventObserver
{
  public:
    /**
     * @param mem          The engine under test (borrowed; used for
     *                     direct tag cross-checks).
     * @param update_pages Firefly update pages, matching what the
     *                     engine was given via setUpdatePages().
     */
    OracleDiffer(const MemorySystem &mem,
                 const std::unordered_set<Addr> *update_pages);

    bool wantsAccessEvents() const override { return true; }

    void onAccess(const MemAccessEvent &event) override;
    void onCodeFill(CpuId cpu, Addr addr, std::uint32_t bytes) override;
    void onDma(CpuId cpu, const BlockOp &op) override;
    void onBufferPrefetchFill(CpuId cpu, Addr addr) override;

    /** End-of-run audit of every line either model touched. */
    void finish();

    bool diverged() const { return divergedFlag; }
    /** Human-readable dump of the first divergence (empty if none). */
    const std::string &report() const { return firstReport; }
    /** Events compared before stopping (or in total). */
    std::uint64_t eventsChecked() const { return eventIndex; }

    const ReferenceMachine &oracle() const { return ref; }

  private:
    void flag(const MemAccessEvent *event, std::string what);
    /** Compare both models on @p l2_line across all processors. */
    void checkL2Line(Addr l2_line, const MemAccessEvent *event);

    void applyRead(const MemAccessEvent &event);
    void applyPrefetch(const MemAccessEvent &event);

    const MemorySystem *engine;
    ReferenceMachine ref;
    bool divergedFlag = false;
    std::string firstReport;
    std::uint64_t eventIndex = 0;
};

/** Outcome of a full engine-vs-oracle differential run. */
struct DiffResult
{
    bool diverged = false;
    /** First divergence with full context (empty when clean). */
    std::string report;
    /** Access events compared. */
    std::uint64_t eventsChecked = 0;
    /** Engine statistics of the run (for callers that want them). */
    SimStats stats;
};

/**
 * Run @p source through a freshly assembled engine (MemorySystem +
 * @p scheme block-operation executor + System) with an OracleDiffer
 * attached, and report the first divergence if any.  Fatal on
 * configurations the reference model cannot mirror (associativity
 * above 1, detailed instruction-cache model).
 *
 * @p sampler, when non-null, is installed on the engine so a sampled
 * source (sample::SampledTraceSource) replays without deadlocking on
 * skipped lock releases; the oracle then validates every replayed
 * (warm and measured) access, since skipped records touch neither
 * model.  result.stats holds the measured windows only in that case.
 */
DiffResult runDiff(TraceSource &source, const MachineConfig &machine,
                   const SimOptions &options, BlockScheme scheme,
                   SampleController *sampler = nullptr);

} // namespace dft
} // namespace oscache

#endif // OSCACHE_DFT_DIFFER_HH
