/**
 * @file
 * Golden-result regression harness.
 *
 * Snapshots the structured results of every registered experiment's
 * smoke cell (one small deterministic simulation per figure, table,
 * ablation, and NUMA suite — 19 cells in all) and compares them
 * against a blessed
 * file under version control (tests/golden/cells.jsonl).  Any future
 * change that shifts a reproduced number fails the check with a
 * line-level diff and must consciously re-bless with
 * `oscache-dft golden --bless`.
 *
 * Normalization: the rows the results sink writes carry per-run
 * volatile fields — wall-clock cost, peak RSS, and whether the
 * scheduler satisfied the cell from a shared outcome.  These are
 * zeroed before comparison; everything else (all simulator statistics,
 * printed at full precision) must match exactly.  Rows are sorted, so
 * the completion order of the scheduler's worker threads does not
 * matter.
 */

#ifndef OSCACHE_DFT_GOLDEN_HH
#define OSCACHE_DFT_GOLDEN_HH

#include <string>
#include <vector>

namespace oscache
{
namespace dft
{

/** Zero the volatile fields (wall_ms, peak_rss_kb, shared) of a row. */
std::string normalizeResultLine(const std::string &line);

/**
 * Run every registered experiment's smoke cell and return the
 * normalized, sorted result rows.  @p scratch_base is where the
 * results sink writes its working files (base + ".jsonl"/".csv",
 * overwritten); @p jobs sizes the scheduling pool.
 */
std::vector<std::string> collectGoldenLines(const std::string &scratch_base,
                                            unsigned jobs);

/** Comparison outcome with a human-readable first-difference dump. */
struct GoldenDiff
{
    bool matches = false;
    std::string report;
};

/** Compare @p current against @p blessed, reporting the differences. */
GoldenDiff compareGolden(const std::vector<std::string> &blessed,
                         const std::vector<std::string> &current);

/**
 * Read a golden file into sorted lines.  Returns false with the
 * reason in @p error when the file is missing or unreadable.
 */
bool readGoldenFile(const std::string &path,
                    std::vector<std::string> &lines, std::string *error);

/** Write @p lines to @p path (one per line); fatal on I/O failure. */
void writeGoldenFile(const std::string &path,
                     const std::vector<std::string> &lines);

} // namespace dft
} // namespace oscache

#endif // OSCACHE_DFT_GOLDEN_HH
