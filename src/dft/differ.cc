#include "dft/differ.hh"

#include <memory>
#include <sstream>

#include "common/log.hh"
#include "sim/system.hh"

namespace oscache
{
namespace dft
{

namespace
{

const char *
stateName(LineState st)
{
    switch (st) {
      case LineState::Invalid:   return "I";
      case LineState::Shared:    return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified:  return "M";
    }
    return "?";
}

const char *
causeName(MissCause cause)
{
    switch (cause) {
      case MissCause::None:         return "none";
      case MissCause::Coherence:    return "coherence";
      case MissCause::Displacement: return "displacement";
      case MissCause::Reuse:        return "reuse";
      case MissCause::Plain:        return "plain";
    }
    return "?";
}

const char *
levelName(ServiceLevel level)
{
    switch (level) {
      case ServiceLevel::L1:             return "L1";
      case ServiceLevel::PrefetchBuffer: return "PrefetchBuffer";
      case ServiceLevel::InFlight:       return "InFlight";
      case ServiceLevel::L2:             return "L2";
      case ServiceLevel::Memory:         return "Memory";
    }
    return "?";
}

const char *
kindName(MemOpKind kind)
{
    switch (kind) {
      case MemOpKind::Read:             return "Read";
      case MemOpKind::Write:            return "Write";
      case MemOpKind::Prefetch:         return "Prefetch";
      case MemOpKind::BypassWrite:      return "BypassWrite";
      case MemOpKind::CodeFill:         return "CodeFill";
      case MemOpKind::InstructionFetch: return "InstructionFetch";
      case MemOpKind::Dma:              return "Dma";
    }
    return "?";
}

void
dumpEvent(std::ostream &os, const MemAccessEvent &event)
{
    os << kindName(event.kind) << " cpu=" << unsigned(event.cpu)
       << " addr=0x" << std::hex << event.addr << std::dec
       << " issued=" << event.issued
       << " ctx{os=" << event.ctx.os
       << " blockOpBody=" << event.ctx.blockOpBody
       << " allocate=" << event.ctx.allocate
       << " category=" << toString(event.ctx.category) << "}"
       << " result{l1Miss=" << event.result.l1Miss
       << " level=" << levelName(event.result.level)
       << " cause=" << causeName(event.result.cause)
       << " partiallyHidden=" << event.result.partiallyHidden << "}"
       << " dropped=" << event.dropped
       << " wholeLine=" << event.wholeLine
       << " invalidated=" << event.invalidated
       << " viaBuffer=" << event.viaBuffer;
}

} // namespace

OracleDiffer::OracleDiffer(const MemorySystem &mem,
                           const std::unordered_set<Addr> *update_pages)
    : engine(&mem), ref(mem.config(), update_pages)
{
    const MachineConfig &cfg = mem.config();
    if (cfg.l1Ways != 1 || cfg.l2Ways != 1)
        panic("OracleDiffer requires direct-mapped caches");
}

void
OracleDiffer::flag(const MemAccessEvent *event, std::string what)
{
    if (divergedFlag)
        return;
    divergedFlag = true;
    std::ostringstream os;
    os << "divergence at event " << eventIndex << ": " << what;
    if (event != nullptr) {
        os << "\n  event: ";
        dumpEvent(os, *event);
        const Addr l2line =
            alignDown(event->addr, Addr{engine->config().l2LineSize});
        os << "\n  l2 line 0x" << std::hex << l2line << std::dec
           << " engine/oracle per cpu:";
        for (CpuId c = 0; c < engine->config().numCpus; ++c)
            os << " cpu" << unsigned(c) << "="
               << stateName(engine->l2State(c, l2line)) << "/"
               << stateName(ref.l2StateOf(c, l2line));
    }
    firstReport = os.str();
}

void
OracleDiffer::checkL2Line(Addr l2_line, const MemAccessEvent *event)
{
    if (divergedFlag)
        return;
    const MachineConfig &cfg = engine->config();
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        const LineState eng = engine->l2State(c, l2_line);
        const LineState orc = ref.l2StateOf(c, l2_line);
        if (eng != orc) {
            std::ostringstream os;
            os << "secondary state mismatch on cpu " << unsigned(c)
               << " line 0x" << std::hex << l2_line << std::dec
               << ": engine " << stateName(eng) << ", oracle "
               << stateName(orc);
            flag(event, os.str());
            return;
        }
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize) {
            const Addr sub = l2_line + off;
            const bool eng1 = engine->l1Contains(c, sub);
            const bool orc1 = ref.l1Has(c, sub);
            if (eng1 != orc1) {
                std::ostringstream os;
                os << "primary residency mismatch on cpu " << unsigned(c)
                   << " line 0x" << std::hex << sub << std::dec
                   << ": engine " << (eng1 ? "present" : "absent")
                   << ", oracle " << (orc1 ? "present" : "absent");
                flag(event, os.str());
                return;
            }
        }
    }
}

void
OracleDiffer::applyRead(const MemAccessEvent &event)
{
    const CpuId cpu = event.cpu;
    const Addr addr = event.addr;
    const AccessResult &res = event.result;

    if (event.viaBuffer) {
        // readViaPrefetchBuffer's own-cache or buffer paths: no tag
        // or mark changes on either machine.  A ready buffer entry
        // reads at primary-cache speed (l1Miss stays false), so the
        // paths are told apart by the service level, not the hit bit.
        if (res.level == ServiceLevel::L1) {
            if (!ref.l1Has(cpu, addr))
                flag(&event, "engine hit via buffer path but the line "
                             "is absent from the oracle primary cache");
        } else if (res.level == ServiceLevel::PrefetchBuffer ||
                   res.level == ServiceLevel::InFlight) {
            // Ready vs not-ready is timing; both require the entry.
            if (!ref.inPrefetchBuffer(cpu, addr))
                flag(&event, "engine serviced from the prefetch buffer "
                             "but the oracle buffer lacks the line");
            else if (res.level == ServiceLevel::InFlight &&
                     res.cause != ref.classify(cpu, addr))
                flag(&event,
                     std::string("buffer-read miss cause mismatch: "
                                 "engine ") +
                         causeName(res.cause) + ", oracle " +
                         causeName(ref.classify(cpu, addr)));
        } else {
            flag(&event, "impossible service level for a buffer read");
        }
        return;
    }

    if (res.l1Miss && res.level == ServiceLevel::InFlight) {
        // Demand read merged with an outstanding prefetch fill: the
        // engine charges the cause recorded when the prefetch issued
        // and consumes the fill register; no tag changes.
        if (!ref.hasFillMark(cpu, addr)) {
            flag(&event, "engine merged with an in-flight fill the "
                         "oracle does not know about");
            return;
        }
        if (res.cause != ref.fillMarkCause(cpu, addr))
            flag(&event,
                 std::string("in-flight miss cause mismatch: engine ") +
                     causeName(res.cause) + ", oracle " +
                     causeName(ref.fillMarkCause(cpu, addr)));
        ref.clearFillMark(cpu, addr);
        return;
    }

    const RefOutcome out = ref.read(cpu, addr, event.ctx.allocate,
                                    event.ctx.blockOpBody,
                                    event.ctx.category);
    if (out.l1Miss != res.l1Miss) {
        flag(&event, std::string("hit/miss mismatch: engine ") +
                         (res.l1Miss ? "miss" : "hit") + ", oracle " +
                         (out.l1Miss ? "miss" : "hit"));
        return;
    }
    if (!res.l1Miss)
        return;
    if (out.cause != res.cause) {
        flag(&event, std::string("miss cause mismatch: engine ") +
                         causeName(res.cause) + ", oracle " +
                         causeName(out.cause));
        return;
    }
    if (out.level != res.level)
        flag(&event, std::string("service level mismatch: engine ") +
                         levelName(res.level) + ", oracle " +
                         levelName(out.level));
}

void
OracleDiffer::applyPrefetch(const MemAccessEvent &event)
{
    const CpuId cpu = event.cpu;
    const Addr addr = event.addr;

    if (event.dropped)
        return; // Busy MSHRs: neither machine changes state.

    if (!event.result.l1Miss) {
        // Trivial hit: present, or already being fetched.  The oracle
        // never prunes completed fills, so its marks are a superset of
        // the engine's registers and this check is sound.
        if (!ref.l1Has(cpu, addr) && !ref.hasFillMark(cpu, addr))
            flag(&event, "engine took a trivial prefetch hit but the "
                         "oracle has neither the line nor a fill mark");
        return;
    }

    if (ref.l1Has(cpu, addr)) {
        flag(&event, "engine performed a full prefetch of a line the "
                     "oracle holds in the primary cache");
        return;
    }
    // A leftover oracle mark is stale (the engine pruned the
    // completed fill); prefetch() replaces it.
    const MissCause expect = ref.classify(cpu, addr);
    ref.prefetch(cpu, addr, event.ctx.blockOpBody, event.ctx.category);
    if (event.result.cause != expect)
        flag(&event, std::string("prefetch cause mismatch: engine ") +
                         causeName(event.result.cause) + ", oracle " +
                         causeName(expect));
}

void
OracleDiffer::onAccess(const MemAccessEvent &event)
{
    if (divergedFlag)
        return;
    ++eventIndex;

    switch (event.kind) {
      case MemOpKind::Read:
        applyRead(event);
        break;
      case MemOpKind::Write:
        // A buffered write has no per-access verdict to compare
        // (res.l1Miss is always false); apply the state transition
        // and rely on the tag cross-check below.
        ref.write(event.cpu, event.addr, event.ctx.blockOpBody);
        break;
      case MemOpKind::Prefetch:
        applyPrefetch(event);
        break;
      case MemOpKind::BypassWrite:
        if (event.wholeLine)
            ref.bypassWriteLine(event.cpu, event.addr);
        else
            ref.bypassWriteWord(event.cpu, event.addr, event.invalidated);
        break;
      default:
        flag(&event, "unexpected access event kind");
        return;
    }

    checkL2Line(alignDown(event.addr, Addr{engine->config().l2LineSize}),
                &event);
}

void
OracleDiffer::onCodeFill(CpuId cpu, Addr addr, std::uint32_t bytes)
{
    if (divergedFlag)
        return;
    ++eventIndex;
    ref.codeFill(cpu, addr, bytes);
    const std::uint32_t line = engine->config().l2LineSize;
    const Addr end = alignUp(addr + bytes, Addr{line});
    for (Addr a = alignDown(addr, Addr{line}); a < end && !divergedFlag;
         a += line)
        checkL2Line(a, nullptr);
}

void
OracleDiffer::onDma(CpuId cpu, const BlockOp &op)
{
    if (divergedFlag)
        return;
    ++eventIndex;
    ref.dma(cpu, op);
    const std::uint32_t line = engine->config().l2LineSize;
    for (Addr a = alignDown(op.dst, Addr{line});
         a < alignUp(op.dst + op.size, Addr{line}) && !divergedFlag;
         a += line)
        checkL2Line(a, nullptr);
    if (op.isCopy())
        for (Addr a = alignDown(op.src, Addr{line});
             a < alignUp(op.src + op.size, Addr{line}) && !divergedFlag;
             a += line)
            checkL2Line(a, nullptr);
}

void
OracleDiffer::onBufferPrefetchFill(CpuId cpu, Addr addr)
{
    if (divergedFlag)
        return;
    ++eventIndex;
    ref.bufferPrefetchFill(cpu, addr);
    checkL2Line(alignDown(addr, Addr{engine->config().l2LineSize}),
                nullptr);
}

void
OracleDiffer::finish()
{
    if (divergedFlag)
        return;
    for (const Addr line : ref.touchedL2Lines()) {
        checkL2Line(line, nullptr);
        if (divergedFlag)
            return;
    }
    for (const Addr line : ref.touchedL1Lines()) {
        for (CpuId c = 0; c < engine->config().numCpus; ++c) {
            const bool eng = engine->l1Contains(c, line);
            const bool orc = ref.l1Has(c, line);
            if (eng != orc) {
                std::ostringstream os;
                os << "final audit: primary residency mismatch on cpu "
                   << unsigned(c) << " line 0x" << std::hex << line
                   << std::dec << ": engine "
                   << (eng ? "present" : "absent") << ", oracle "
                   << (orc ? "present" : "absent");
                flag(nullptr, os.str());
                return;
            }
        }
    }
}

DiffResult
runDiff(TraceSource &source, const MachineConfig &machine,
        const SimOptions &options, BlockScheme scheme,
        SampleController *sampler)
{
    if (machine.l1Ways != 1 || machine.l2Ways != 1)
        panic("runDiff: the reference model is direct-mapped only");
    if (options.modelICache)
        panic("runDiff: detailed instruction-cache model unsupported");

    DiffResult result;
    MemorySystem mem(machine);
    OracleDiffer differ(mem, &source.updatePages());
    mem.setObserver(&differ);

    auto executor = makeBlockOpExecutor(scheme, mem, result.stats, options);
    System system(source, mem, *executor, options, result.stats);
    SimStats warm;
    if (sampler != nullptr)
        system.setSampling(sampler, &warm);
    system.run();
    differ.finish();

    result.diverged = differ.diverged();
    result.report = differ.report();
    result.eventsChecked = differ.eventsChecked();
    return result;
}

} // namespace dft
} // namespace oscache
