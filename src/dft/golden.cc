#include "dft/golden.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "exp/driver.hh"

namespace oscache
{
namespace dft
{

namespace
{

/**
 * Replace the value of numeric field @p key (e.g. "\"wall_ms\":") in
 * @p line with @p replacement.  The value runs to the next ',' or
 * '}'.  Rows are machine-generated, so the first occurrence is the
 * field itself.
 */
void
spliceField(std::string &line, const std::string &key,
            const std::string &replacement)
{
    const std::size_t at = line.find(key);
    if (at == std::string::npos)
        return;
    const std::size_t begin = at + key.size();
    std::size_t end = begin;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    line.replace(begin, end - begin, replacement);
}

} // namespace

std::string
normalizeResultLine(const std::string &line)
{
    std::string out = line;
    spliceField(out, "\"wall_ms\":", "0");
    spliceField(out, "\"peak_rss_kb\":", "0");
    spliceField(out, "\"shared\":", "false");
    return out;
}

std::vector<std::string>
collectGoldenLines(const std::string &scratch_base, unsigned jobs)
{
    DriverOptions options;
    options.jobs = jobs == 0 ? 1 : jobs;
    options.smoke = true;
    options.resultsBase = scratch_base;
    runExperiments(resolveExperiments({"all"}), options);

    std::ifstream in(scratch_base + ".jsonl");
    if (!in)
        fatal("golden: cannot read back '", scratch_base, ".jsonl'");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(normalizeResultLine(line));
    std::sort(lines.begin(), lines.end());
    return lines;
}

GoldenDiff
compareGolden(const std::vector<std::string> &blessed,
              const std::vector<std::string> &current)
{
    GoldenDiff diff;
    if (blessed == current) {
        diff.matches = true;
        return diff;
    }

    // Both sides are sorted: a two-pointer sweep yields the missing
    // and unexpected rows directly.
    std::ostringstream os;
    os << "golden mismatch: blessed " << blessed.size()
       << " rows, current " << current.size() << " rows\n";
    std::size_t b = 0, c = 0;
    unsigned shown = 0;
    const unsigned limit = 6;
    const auto cellId = [](const std::string &row) {
        // Up through the "cell" field, for a short label.
        const std::size_t at = row.find("\"machine\"");
        return at == std::string::npos ? row : row.substr(0, at - 1);
    };
    while ((b < blessed.size() || c < current.size()) && shown < limit) {
        if (b < blessed.size() && c < current.size() &&
            blessed[b] == current[c]) {
            ++b;
            ++c;
            continue;
        }
        ++shown;
        if (c >= current.size() ||
            (b < blessed.size() && blessed[b] < current[c])) {
            os << "  only in blessed: " << cellId(blessed[b]) << "\n"
               << "    " << blessed[b] << "\n";
            ++b;
        } else {
            os << "  only in current: " << cellId(current[c]) << "\n"
               << "    " << current[c] << "\n";
            ++c;
        }
    }
    const std::size_t remaining =
        (blessed.size() - b) + (current.size() - c);
    if (remaining > 0)
        os << "  ... and up to " << remaining << " more differing rows\n";
    os << "If the change is intentional, re-bless with: oscache-dft "
          "golden --bless";
    diff.report = os.str();
    return diff;
}

bool
readGoldenFile(const std::string &path, std::vector<std::string> &lines,
               std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open golden file '" + path +
                     "' (run `oscache-dft golden --bless` to create it)";
        return false;
    }
    lines.clear();
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return true;
}

void
writeGoldenFile(const std::string &path,
                const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("golden: cannot write '", path, "'");
    for (const std::string &line : lines)
        out << line << '\n';
    if (!out)
        fatal("golden: write to '", path, "' failed");
}

} // namespace dft
} // namespace oscache
