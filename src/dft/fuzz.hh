/**
 * @file
 * Deterministic adversarial trace generator for the differential
 * oracle.
 *
 * Every fuzz case is a pure function of its 64-bit seed: the machine
 * geometry (tiny caches so conflict sets collide constantly), the
 * coherence protocol, the block-operation scheme, and the trace
 * itself are all derived from one Rng stream.  A reported failure is
 * reproduced exactly by re-running the same seed.
 *
 * The generated traces concentrate on the engine's hard cases:
 *
 *  - pathological conflict sets: a handful of addresses that all map
 *    to the same primary-cache set, touched in tight rotation;
 *  - same-line multi-writer storms: every processor reads and writes
 *    the same few shared lines, with and without Firefly update
 *    pages, under Illinois and MSI;
 *  - block-operation / lock interleavings: copies and zeros (under
 *    any of the five schemes) racing with lock-protected accesses and
 *    full barriers;
 *  - duplicate records and truncated streams: benign duplication of
 *    data records and chopped non-synchronizing tails, which a
 *    correct engine must absorb without drift.
 *
 * Synchronization is generated well-formed (balanced lock pairs per
 * processor, all-processor barriers appended to every stream) because
 * the replay engine treats malformed synchronization as fatal trace
 * corruption; byte-level corruption robustness is covered separately
 * by the trace I/O error-path tests.
 */

#ifndef OSCACHE_DFT_FUZZ_HH
#define OSCACHE_DFT_FUZZ_HH

#include <cstdint>

#include "core/blockop/schemes.hh"
#include "dft/differ.hh"
#include "mem/config.hh"
#include "trace/trace.hh"

namespace oscache
{
namespace dft
{

/** Everything one fuzz iteration derived from its seed. */
struct FuzzCase
{
    std::uint64_t seed = 0;
    MachineConfig machine;
    BlockScheme scheme = BlockScheme::Base;
    Trace trace;

    FuzzCase() : trace(1) {}
};

/** Result of one fuzz iteration. */
struct FuzzReport
{
    std::uint64_t seed = 0;
    BlockScheme scheme = BlockScheme::Base;
    std::size_t records = 0;
    DiffResult diff;
};

/** Derive the complete case (machine, scheme, trace) for @p seed. */
FuzzCase makeFuzzCase(std::uint64_t seed);

/** Generate the case for @p seed and run it through the differ. */
FuzzReport fuzzOne(std::uint64_t seed);

} // namespace dft
} // namespace oscache

#endif // OSCACHE_DFT_FUZZ_HH
