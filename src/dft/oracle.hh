/**
 * @file
 * The differential-testing oracle: a deliberately simple, sequential
 * reference model of the coherent memory hierarchy.
 *
 * ReferenceMachine re-implements the *functional* semantics of the
 * engine — tag arrays, MESI/Firefly line states, and the paper's
 * miss-classification marks — from scratch, sharing no code with
 * src/mem.  It has no clock, no bus, no write buffers and no
 * latencies: given the same sequence of operations it predicts, for
 * every data read and software prefetch, whether the primary cache
 * hits and, on a miss, the paper's cause classification
 * (coherence / displacement / reuse / plain) and the service level.
 *
 * Timing-dependent outcomes (a prefetch dropped on busy MSHRs, a
 * demand read merging with an outstanding fill, a Blk_ByPref buffer
 * entry that is or is not ready) cannot be derived without a clock;
 * the oracle instead tracks *marks* ("this line has an outstanding
 * prefetched fill", "this line sits in the source prefetch buffer")
 * that let the differ (differ.hh) accept exactly the set of outcomes
 * the timing layer may legally produce.
 *
 * Two drivers exist: the differ replays the engine's own access
 * stream through the primitives below and compares outcome by
 * outcome, and runStandalone() consumes TraceSource cursors directly
 * (sequential, one processor after another per round), producing
 * per-processor hit/miss/category counts without the engine at all.
 *
 * The model requires direct-mapped caches (the paper's geometry):
 * with ways == 1 the replacement decision is a pure function of the
 * address, so the reference tags provably track the engine's without
 * copying its LRU mechanics.
 */

#ifndef OSCACHE_DFT_ORACLE_HH
#define OSCACHE_DFT_ORACLE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "mem/access.hh"
#include "mem/cache.hh"
#include "mem/config.hh"
#include "trace/blockop.hh"
#include "trace/source.hh"

namespace oscache
{
namespace dft
{

/** Number of DataCategory values (local so dft stays sim-free). */
inline constexpr std::size_t numCategories =
    static_cast<std::size_t>(DataCategory::NumCategories);

/** Per-processor hit/miss/category counts the oracle produces. */
struct RefCounts
{
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;
    std::uint64_t missPlain = 0;
    std::uint64_t missCoherence = 0;
    std::uint64_t missDisplacement = 0;
    std::uint64_t missReuse = 0;
    /** Read misses by the referenced data-structure category. */
    std::array<std::uint64_t, numCategories> missByCategory{};

    /**
     * @name Two-level topology attribution (all zero on a flat
     * machine).  The model has no link or timing, but home-socket
     * membership is a pure function of the address, so the oracle
     * splits every memory-serviced read miss by whether its home
     * granule lives on the reader's socket — the functional half of
     * the engine's local/remote read accounting.
     * @{
     */
    std::uint64_t homeLocalReads = 0;
    std::uint64_t homeRemoteReads = 0;
    /** @} */

    std::uint64_t
    misses() const
    {
        return missPlain + missCoherence + missDisplacement + missReuse;
    }

    bool operator==(const RefCounts &) const = default;
};

/** What the reference model predicts for one read or prefetch. */
struct RefOutcome
{
    bool l1Miss = false;
    MissCause cause = MissCause::None;
    /** L1, L2, or Memory (the oracle has no timing-only levels). */
    ServiceLevel level = ServiceLevel::L1;
};

/**
 * The sequential reference simulator.  See the file comment for
 * scope; all state lives in plain maps and deques so that the code
 * reads as a direct transcription of the protocol rules.
 */
class ReferenceMachine
{
  public:
    /**
     * @param config       Machine geometry (must be direct-mapped).
     * @param update_pages Pages under the Firefly update protocol,
     *                     or nullptr for pure invalidate.  The set is
     *                     borrowed and must outlive the machine.
     */
    ReferenceMachine(const MachineConfig &config,
                     const std::unordered_set<Addr> *update_pages);

    /** @name Functional operation primitives @{ */

    /**
     * Data read.  @p allocate false models the bypass-scheme source
     * path (probe, fetch without installing, mark for reuse).
     */
    RefOutcome read(CpuId cpu, Addr addr, bool allocate,
                    bool block_op_body, DataCategory category);

    /** Buffered data write (write-allocate, invalidate or update). */
    void write(CpuId cpu, Addr addr, bool block_op_body);

    /**
     * Non-trivial software prefetch: fetch and install the line and
     * leave an outstanding-fill mark.  The caller (differ or
     * standalone driver) decides whether the prefetch was trivial —
     * see l1Has() / hasFillMark().
     */
    RefOutcome prefetch(CpuId cpu, Addr addr, bool block_op_body,
                        DataCategory category);

    /** Full-line bypass write (Blk_Bypass destination, line form). */
    void bypassWriteLine(CpuId cpu, Addr addr);

    /** Single-word bypass write; @p invalidate on the first word. */
    void bypassWriteWord(CpuId cpu, Addr addr, bool invalidate);

    /** Instruction-footprint fill of [@p addr, @p addr + bytes). */
    void codeFill(CpuId cpu, Addr addr, std::uint32_t bytes);

    /** DMA-engine block operation (Blk_Dma). */
    void dma(CpuId cpu, const BlockOp &op);

    /** A line entered the Blk_ByPref source prefetch buffer. */
    void bufferPrefetchFill(CpuId cpu, Addr addr);

    /** @} */

    /** @name State queries (differ accept-either rules, audits) @{ */

    bool l1Has(CpuId cpu, Addr addr) const;
    LineState l2StateOf(CpuId cpu, Addr addr) const;

    /** Outstanding prefetched-fill mark on @p addr's primary line. */
    bool hasFillMark(CpuId cpu, Addr addr) const;
    /** Cause recorded with the fill mark (valid iff hasFillMark). */
    MissCause fillMarkCause(CpuId cpu, Addr addr) const;
    /** Consume the fill mark (a demand read reached the line). */
    void clearFillMark(CpuId cpu, Addr addr);

    /** True iff @p addr's line sits in the source prefetch buffer. */
    bool inPrefetchBuffer(CpuId cpu, Addr addr) const;

    /** Classification a miss on @p addr would receive right now. */
    MissCause classify(CpuId cpu, Addr addr) const;

    /** Every l1/l2 line address the model ever touched (audits). */
    const std::unordered_set<Addr> &touchedL1Lines() const
    {
        return seenL1Lines;
    }
    const std::unordered_set<Addr> &touchedL2Lines() const
    {
        return seenL2Lines;
    }

    const RefCounts &counts(CpuId cpu) const { return perCpu[cpu].counts; }
    unsigned numCpus() const { return unsigned(perCpu.size()); }

    /** @} */

    /**
     * Consume @p source's cursors directly — one record per processor
     * per round, sequentially — and tally per-processor counts.
     * Synchronization records degrade to their data accesses (the
     * sequential model has no contention) and block operations expand
     * word by word as the Base scheme would issue them.  Exact
     * engine agreement is only claimed for single-processor traces,
     * where sequential order and engine order coincide.
     */
    void runStandalone(TraceSource &source);

  private:
    /**
     * Direct-mapped tag array, written from the protocol description
     * rather than shared with mem/cache.hh: one line per set, the
     * set being a pure function of the address.
     */
    struct DirectTags
    {
        DirectTags(std::uint32_t size, std::uint32_t line_size);

        Addr lineOf(Addr addr) const
        {
            return addr & ~Addr{lineSize - 1};
        }
        std::size_t setOf(Addr addr) const
        {
            return std::size_t(addr / lineSize) & (numSets - 1);
        }

        bool contains(Addr addr) const;
        /** Install; @return the displaced line or invalidAddr. */
        Addr fill(Addr addr);
        void drop(Addr addr);

        std::uint32_t lineSize;
        std::size_t numSets;
        std::vector<Addr> lines; ///< per set; invalidAddr = empty
    };

    struct CpuModel
    {
        CpuModel(const MachineConfig &config);

        DirectTags l1;
        DirectTags l2;
        std::vector<LineState> l2States; ///< parallel to l2.lines
        /** Primary lines invalidated under another cpu's snoop. */
        std::unordered_set<Addr> coherenceInvalidated;
        /** Primary lines last displaced by a block-operation fill. */
        std::unordered_set<Addr> blockOpEvicted;
        /** Outstanding prefetched fills: primary line -> cause. */
        std::unordered_map<Addr, MissCause> fillMarks;
        /** Blk_ByPref source prefetch buffer (FIFO of lines). */
        std::deque<Addr> prefetchBuffer;

        RefCounts counts;
    };

    LineState l2State(const CpuModel &m, Addr addr) const;
    void setL2(CpuModel &m, Addr addr, LineState state);
    /** Install an l2 line, applying inclusion to the victim. */
    void installL2(CpuId cpu, Addr l2_line, LineState state);
    void dropL2(CpuModel &m, Addr addr);
    void fillL1(CpuId cpu, Addr addr, bool block_op_fill);
    void snoopInvalidate(CpuId requester, Addr l2_line);
    bool sharedElsewhere(CpuId requester, Addr l2_line) const;
    LineState readFillState(CpuId requester, Addr l2_line) const;
    /** Non-exclusive bus read: every remote holder ends Shared. */
    void busReadShared(CpuId requester, Addr l2_line);
    bool isUpdateAddr(Addr addr) const;
    void note(CpuId cpu, DataCategory category, const RefOutcome &out);

    Addr l1LineOf(Addr addr) const { return alignDown(addr, cfg.l1LineSize); }
    Addr l2LineOf(Addr addr) const { return alignDown(addr, cfg.l2LineSize); }

    MachineConfig cfg;
    std::vector<CpuModel> perCpu;
    /** Lines last touched by a bypassing block op (global, as in mem). */
    std::unordered_set<Addr> bypassedLines;
    const std::unordered_set<Addr> *updatePages;
    std::unordered_set<Addr> seenL1Lines;
    std::unordered_set<Addr> seenL2Lines;
};

} // namespace dft
} // namespace oscache

#endif // OSCACHE_DFT_ORACLE_HH
