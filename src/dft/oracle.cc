#include "dft/oracle.hh"

#include "common/log.hh"

namespace oscache
{
namespace dft
{

// ---------------------------------------------------------------------------
// Direct-mapped tags.

ReferenceMachine::DirectTags::DirectTags(std::uint32_t size,
                                         std::uint32_t line_size)
    : lineSize(line_size), numSets(size / line_size),
      lines(numSets, invalidAddr)
{
    if (!isPowerOfTwo(size) || !isPowerOfTwo(line_size) || numSets == 0)
        panic("ReferenceMachine: sizes must be powers of two");
}

bool
ReferenceMachine::DirectTags::contains(Addr addr) const
{
    return lines[setOf(addr)] == lineOf(addr);
}

Addr
ReferenceMachine::DirectTags::fill(Addr addr)
{
    Addr &slot = lines[setOf(addr)];
    const Addr line = lineOf(addr);
    if (slot == line)
        return invalidAddr;
    const Addr victim = slot;
    slot = line;
    return victim; // invalidAddr when the set was empty.
}

void
ReferenceMachine::DirectTags::drop(Addr addr)
{
    Addr &slot = lines[setOf(addr)];
    if (slot == lineOf(addr))
        slot = invalidAddr;
}

// ---------------------------------------------------------------------------
// Construction.

ReferenceMachine::CpuModel::CpuModel(const MachineConfig &config)
    : l1(config.l1Size, config.l1LineSize),
      l2(config.l2Size, config.l2LineSize),
      l2States(config.l2Sets(), LineState::Invalid)
{}

ReferenceMachine::ReferenceMachine(
    const MachineConfig &config,
    const std::unordered_set<Addr> *update_pages)
    : cfg(config), updatePages(update_pages)
{
    cfg.check();
    if (cfg.l1Ways != 1 || cfg.l2Ways != 1)
        panic("ReferenceMachine models direct-mapped caches only");
    perCpu.reserve(cfg.numCpus);
    for (unsigned i = 0; i < cfg.numCpus; ++i)
        perCpu.emplace_back(cfg);
}

// ---------------------------------------------------------------------------
// State helpers.

LineState
ReferenceMachine::l2State(const CpuModel &m, Addr addr) const
{
    return m.l2.contains(addr) ? m.l2States[m.l2.setOf(addr)]
                               : LineState::Invalid;
}

void
ReferenceMachine::setL2(CpuModel &m, Addr addr, LineState state)
{
    if (!m.l2.contains(addr))
        panic("ReferenceMachine: state change on absent secondary line");
    m.l2States[m.l2.setOf(addr)] = state;
}

void
ReferenceMachine::dropL2(CpuModel &m, Addr addr)
{
    if (!m.l2.contains(addr))
        return;
    m.l2States[m.l2.setOf(addr)] = LineState::Invalid;
    m.l2.drop(addr);
}

void
ReferenceMachine::installL2(CpuId cpu, Addr l2_line, LineState state)
{
    CpuModel &m = perCpu[cpu];
    seenL2Lines.insert(l2_line);
    const Addr victim = m.l2.fill(l2_line);
    if (victim != invalidAddr) {
        // Inclusion: the victim's primary copies die with it (without
        // leaving classification marks — this is not a snoop).
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize)
            m.l1.drop(victim + off);
    }
    m.l2States[m.l2.setOf(l2_line)] = state;
}

void
ReferenceMachine::fillL1(CpuId cpu, Addr addr, bool block_op_fill)
{
    CpuModel &m = perCpu[cpu];
    const Addr line = l1LineOf(addr);
    seenL1Lines.insert(line);
    const Addr victim = m.l1.fill(addr);
    if (victim != invalidAddr) {
        if (block_op_fill)
            m.blockOpEvicted.insert(victim);
        else
            m.blockOpEvicted.erase(victim);
    }
    // A fresh residency wipes any stale classification marks.
    m.coherenceInvalidated.erase(line);
    m.blockOpEvicted.erase(line);
    bypassedLines.erase(line);
}

void
ReferenceMachine::snoopInvalidate(CpuId requester, Addr l2_line)
{
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        CpuModel &other = perCpu[c];
        if (l2State(other, l2_line) == LineState::Invalid)
            continue;
        dropL2(other, l2_line);
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize) {
            const Addr sub = l2_line + off;
            if (other.l1.contains(sub)) {
                other.l1.drop(sub);
                other.coherenceInvalidated.insert(sub);
            }
        }
    }
}

bool
ReferenceMachine::sharedElsewhere(CpuId requester, Addr l2_line) const
{
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        if (l2State(perCpu[c], l2_line) != LineState::Invalid)
            return true;
    }
    return false;
}

LineState
ReferenceMachine::readFillState(CpuId requester, Addr l2_line) const
{
    if (sharedElsewhere(requester, l2_line))
        return LineState::Shared;
    return cfg.protocol == CoherenceProtocol::Illinois
        ? LineState::Exclusive : LineState::Shared;
}

void
ReferenceMachine::busReadShared(CpuId requester, Addr l2_line)
{
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        CpuModel &other = perCpu[c];
        if (l2State(other, l2_line) != LineState::Invalid)
            setL2(other, l2_line, LineState::Shared);
    }
}

bool
ReferenceMachine::isUpdateAddr(Addr addr) const
{
    if (updatePages == nullptr || updatePages->empty())
        return false;
    return updatePages->count(alignDown(addr, Addr{4096})) != 0;
}

MissCause
ReferenceMachine::classify(CpuId cpu, Addr addr) const
{
    const Addr line = l1LineOf(addr);
    const CpuModel &m = perCpu[cpu];
    if (m.coherenceInvalidated.count(line))
        return MissCause::Coherence;
    if (bypassedLines.count(line))
        return MissCause::Reuse;
    if (m.blockOpEvicted.count(line))
        return MissCause::Displacement;
    return MissCause::Plain;
}

void
ReferenceMachine::note(CpuId cpu, DataCategory category,
                       const RefOutcome &out)
{
    RefCounts &c = perCpu[cpu].counts;
    ++c.reads;
    if (!out.l1Miss) {
        ++c.readHits;
        return;
    }
    switch (out.cause) {
      case MissCause::Coherence:    ++c.missCoherence;    break;
      case MissCause::Displacement: ++c.missDisplacement; break;
      case MissCause::Reuse:        ++c.missReuse;        break;
      default:                      ++c.missPlain;        break;
    }
    ++c.missByCategory[static_cast<std::size_t>(category)];
}

// ---------------------------------------------------------------------------
// Operation primitives.

RefOutcome
ReferenceMachine::read(CpuId cpu, Addr addr, bool allocate,
                       bool block_op_body, DataCategory category)
{
    CpuModel &m = perCpu[cpu];
    const Addr line = l1LineOf(addr);
    const Addr l2line = l2LineOf(addr);
    seenL1Lines.insert(line);
    seenL2Lines.insert(l2line);

    // A demand read reaching the line consumes any outstanding-fill
    // mark (the engine erases the in-flight register whether or not
    // the fill had completed).
    m.fillMarks.erase(line);

    RefOutcome out;
    if (m.l1.contains(addr)) {
        note(cpu, category, out);
        return out;
    }

    out.l1Miss = true;
    out.cause = classify(cpu, addr);

    if (l2State(m, addr) != LineState::Invalid) {
        out.level = ServiceLevel::L2;
    } else {
        out.level = ServiceLevel::Memory;
        if (cfg.numaActive()) {
            if (cfg.homeSocketOf(l2line) == cfg.socketOf(cpu))
                ++m.counts.homeLocalReads;
            else
                ++m.counts.homeRemoteReads;
        }
        busReadShared(cpu, l2line);
        if (allocate)
            installL2(cpu, l2line, readFillState(cpu, l2line));
    }

    if (allocate)
        fillL1(cpu, addr, block_op_body);
    else
        bypassedLines.insert(line);
    note(cpu, category, out);
    return out;
}

void
ReferenceMachine::write(CpuId cpu, Addr addr, bool block_op_body)
{
    CpuModel &m = perCpu[cpu];
    const Addr l2line = l2LineOf(addr);
    seenL1Lines.insert(l1LineOf(addr));
    seenL2Lines.insert(l2line);

    const LineState st = l2State(m, addr);
    if (st == LineState::Modified || st == LineState::Exclusive) {
        // Local write: silently upgrade Exclusive to Modified.
        setL2(m, addr, LineState::Modified);
    } else if (isUpdateAddr(addr)) {
        // Firefly update protocol for this page.
        if (st == LineState::Invalid) {
            busReadShared(cpu, l2line);
            installL2(cpu, l2line, LineState::Shared);
        }
        if (sharedElsewhere(cpu, l2line)) {
            // Sharers keep their updated copies; everyone ends Shared.
            busReadShared(cpu, l2line);
            setL2(m, l2line, LineState::Shared);
        } else {
            setL2(m, l2line, LineState::Modified);
        }
    } else if (st == LineState::Shared) {
        // Invalidation-only transaction, then write locally.
        snoopInvalidate(cpu, l2line);
        setL2(m, addr, LineState::Modified);
    } else {
        // Write miss: read-for-ownership (all other copies die),
        // allocate Modified.
        snoopInvalidate(cpu, l2line);
        installL2(cpu, l2line, LineState::Modified);
    }

    // Write-allocate primary cache.
    if (!m.l1.contains(addr))
        fillL1(cpu, addr, block_op_body);
}

RefOutcome
ReferenceMachine::prefetch(CpuId cpu, Addr addr, bool block_op_body,
                           DataCategory category)
{
    (void)category;
    CpuModel &m = perCpu[cpu];
    const Addr line = l1LineOf(addr);
    const Addr l2line = l2LineOf(addr);
    seenL1Lines.insert(line);
    seenL2Lines.insert(l2line);

    // The caller established this is a non-trivial prefetch.  Any
    // leftover mark is stale (the engine prunes completed fills by
    // time, which a clockless model cannot mirror) — replace it.
    RefOutcome out;
    out.l1Miss = true;
    out.cause = classify(cpu, addr);
    // The engine reports every non-trivial prefetch at Memory level.
    out.level = ServiceLevel::Memory;

    if (l2State(m, addr) == LineState::Invalid) {
        busReadShared(cpu, l2line);
        installL2(cpu, l2line, readFillState(cpu, l2line));
    }
    fillL1(cpu, addr, block_op_body);
    m.fillMarks[line] = out.cause;
    return out;
}

void
ReferenceMachine::bypassWriteLine(CpuId cpu, Addr addr)
{
    const Addr l2line = l2LineOf(addr);
    seenL2Lines.insert(l2line);
    snoopInvalidate(cpu, l2line);
    // The destination line ends up uncached: future reuses miss.
    for (std::uint32_t off = 0; off < cfg.l2LineSize; off += cfg.l1LineSize) {
        bypassedLines.insert(l2line + off);
        seenL1Lines.insert(l2line + off);
    }
}

void
ReferenceMachine::bypassWriteWord(CpuId cpu, Addr addr, bool invalidate)
{
    const Addr l2line = l2LineOf(addr);
    seenL2Lines.insert(l2line);
    seenL1Lines.insert(l1LineOf(addr));
    if (invalidate)
        snoopInvalidate(cpu, l2line);
    bypassedLines.insert(l1LineOf(addr));
}

void
ReferenceMachine::codeFill(CpuId cpu, Addr addr, std::uint32_t bytes)
{
    CpuModel &m = perCpu[cpu];
    const Addr end = alignUp(addr + bytes, cfg.l2LineSize);
    for (Addr a = alignDown(addr, cfg.l2LineSize); a < end;
         a += cfg.l2LineSize) {
        seenL2Lines.insert(a);
        if (l2State(m, a) != LineState::Invalid)
            continue;
        // The fetch snoops like any bus read: remote owners demote.
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (c == cpu)
                continue;
            CpuModel &other = perCpu[c];
            const LineState st = l2State(other, a);
            if (st == LineState::Modified || st == LineState::Exclusive)
                setL2(other, a, LineState::Shared);
        }
        installL2(cpu, a, readFillState(cpu, a));
    }
}

void
ReferenceMachine::dma(CpuId cpu, const BlockOp &op)
{
    CpuModel &m = perCpu[cpu];
    const Addr dst_begin = l2LineOf(op.dst);
    const Addr dst_end = alignUp(op.dst + op.size, cfg.l2LineSize);

    // Dirty source lines are supplied by their owners, who demote.
    if (op.isCopy()) {
        const Addr src_end = alignUp(op.src + op.size, cfg.l2LineSize);
        for (Addr a = l2LineOf(op.src); a < src_end; a += cfg.l2LineSize) {
            seenL2Lines.insert(a);
            for (CpuId c = 0; c < cfg.numCpus; ++c) {
                if (l2State(perCpu[c], a) == LineState::Modified) {
                    setL2(perCpu[c], a, LineState::Shared);
                    break;
                }
            }
        }
    }

    // Destination lines: resident copies anywhere are updated in
    // place; unresident lines stay out and become reuse candidates.
    for (Addr a = dst_begin; a < dst_end; a += cfg.l2LineSize) {
        seenL2Lines.insert(a);
        bool cached_anywhere = false;
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            CpuModel &holder = perCpu[c];
            if (l2State(holder, a) != LineState::Invalid) {
                cached_anywhere = true;
                setL2(holder, a, LineState::Shared);
                for (std::uint32_t off = 0; off < cfg.l2LineSize;
                     off += cfg.l1LineSize)
                    holder.coherenceInvalidated.erase(a + off);
            }
        }
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize) {
            seenL1Lines.insert(a + off);
            if (cached_anywhere)
                bypassedLines.erase(a + off);
            else
                bypassedLines.insert(a + off);
        }
    }

    // Source lines the originator does not hold stay out of its
    // caches: their first future touch is a reuse miss.
    if (op.isCopy()) {
        const Addr src_end = alignUp(op.src + op.size, cfg.l2LineSize);
        for (Addr a = l2LineOf(op.src); a < src_end; a += cfg.l2LineSize) {
            if (l2State(m, a) != LineState::Invalid)
                continue;
            for (std::uint32_t off = 0; off < cfg.l2LineSize;
                 off += cfg.l1LineSize) {
                seenL1Lines.insert(a + off);
                bypassedLines.insert(a + off);
            }
        }
    }
}

void
ReferenceMachine::bufferPrefetchFill(CpuId cpu, Addr addr)
{
    CpuModel &m = perCpu[cpu];
    const Addr line = l1LineOf(addr);
    seenL1Lines.insert(line);

    if (m.prefetchBuffer.size() >= cfg.blockPrefetchBufferLines)
        m.prefetchBuffer.pop_front();
    // A fill that needed the bus snoops: a Modified owner demotes.
    if (!m.l1.contains(addr) &&
        l2State(m, addr) == LineState::Invalid) {
        const Addr l2line = l2LineOf(addr);
        seenL2Lines.insert(l2line);
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (c == cpu)
                continue;
            if (l2State(perCpu[c], l2line) == LineState::Modified)
                setL2(perCpu[c], l2line, LineState::Shared);
        }
    }
    m.prefetchBuffer.push_back(line);
}

// ---------------------------------------------------------------------------
// Queries.

bool
ReferenceMachine::l1Has(CpuId cpu, Addr addr) const
{
    return perCpu[cpu].l1.contains(addr);
}

LineState
ReferenceMachine::l2StateOf(CpuId cpu, Addr addr) const
{
    return l2State(perCpu[cpu], addr);
}

bool
ReferenceMachine::hasFillMark(CpuId cpu, Addr addr) const
{
    return perCpu[cpu].fillMarks.count(l1LineOf(addr)) != 0;
}

MissCause
ReferenceMachine::fillMarkCause(CpuId cpu, Addr addr) const
{
    const auto it = perCpu[cpu].fillMarks.find(l1LineOf(addr));
    return it == perCpu[cpu].fillMarks.end() ? MissCause::None : it->second;
}

void
ReferenceMachine::clearFillMark(CpuId cpu, Addr addr)
{
    perCpu[cpu].fillMarks.erase(l1LineOf(addr));
}

bool
ReferenceMachine::inPrefetchBuffer(CpuId cpu, Addr addr) const
{
    const Addr line = l1LineOf(addr);
    for (const Addr entry : perCpu[cpu].prefetchBuffer)
        if (entry == line)
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Standalone trace consumption.

void
ReferenceMachine::runStandalone(TraceSource &source)
{
    if (source.numCpus() > cfg.numCpus)
        panic("ReferenceMachine: trace has more cpus than the machine");

    const auto data = [&](CpuId cpu, const TraceRecord &rec) {
        switch (rec.type) {
          case RecordType::Read:
            read(cpu, rec.addr, true, rec.isBlockOpBody(), rec.category);
            break;
          case RecordType::Write:
            write(cpu, rec.addr, rec.isBlockOpBody());
            break;
          case RecordType::Prefetch:
            if (!l1Has(cpu, rec.addr) && !hasFillMark(cpu, rec.addr))
                prefetch(cpu, rec.addr, rec.isBlockOpBody(),
                         rec.category);
            break;
          default:
            break;
        }
    };

    // Block operations expand word by word, exactly as the Base
    // scheme's processor-driven loop issues them: all source words of
    // a primary line are read, then all destination words written.
    const auto blockOp = [&](CpuId cpu, const BlockOp &op) {
        const std::uint32_t word = 4;
        for (Addr off = 0; off < op.size; off += cfg.l1LineSize) {
            const Addr chunk =
                std::min<Addr>(cfg.l1LineSize, op.size - off);
            if (op.isCopy())
                for (Addr w = 0; w < chunk; w += word)
                    read(cpu, op.src + off + w, true, true,
                         DataCategory::BlockSrc);
            for (Addr w = 0; w < chunk; w += word)
                write(cpu, op.dst + off + w, true);
        }
    };

    std::vector<std::unique_ptr<RecordCursor>> cursors;
    for (unsigned c = 0; c < source.numCpus(); ++c)
        cursors.push_back(source.cursor(CpuId(c)));

    // Sequential round-robin: one record per processor per round.
    bool any = true;
    while (any) {
        any = false;
        for (unsigned c = 0; c < cursors.size(); ++c) {
            const TraceRecord *rec = cursors[c]->peek();
            if (rec == nullptr)
                continue;
            any = true;
            const CpuId cpu = CpuId(c);
            switch (rec->type) {
              case RecordType::Exec:
                if (rec->bb != invalidBasicBlock)
                    codeFill(cpu, codeSpaceBase + Addr{rec->bb} * 4096,
                             std::min<std::uint32_t>(4096, rec->aux * 8));
                break;
              case RecordType::BlockOpBegin:
                blockOp(cpu, source.blockOps().get(BlockOpId(rec->aux)));
                break;
              case RecordType::LockAcquire:
              case RecordType::BarrierArrive:
                // Read-modify-write of the synchronization variable
                // (the sequential model never contends).
                data(cpu, TraceRecord::read(rec->addr, rec->category,
                                            invalidBasicBlock,
                                            rec->isOs()));
                write(cpu, rec->addr, false);
                break;
              case RecordType::LockRelease:
                write(cpu, rec->addr, false);
                break;
              default:
                data(cpu, *rec);
                break;
            }
            cursors[c]->advance();
        }
    }
}

} // namespace dft
} // namespace oscache
