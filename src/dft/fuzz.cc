#include "dft/fuzz.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"

namespace oscache
{
namespace dft
{

namespace
{

/** Address-pool roles the generator draws from. */
enum class Pool
{
    Conflict, ///< Same primary set, different lines.
    Shared,   ///< Few lines every processor reads and writes.
    Private,  ///< Per-processor region (permutation-symmetric noise).
    Update,   ///< Lines in the (possibly) Firefly-update page.
    Block,    ///< The block-operation source/destination region.
};

Pool
pickPool(Rng &rng)
{
    const double roll = rng.uniform();
    if (roll < 0.40)
        return Pool::Conflict;
    if (roll < 0.65)
        return Pool::Shared;
    if (roll < 0.80)
        return Pool::Private;
    if (roll < 0.90)
        return Pool::Update;
    return Pool::Block;
}

DataCategory
poolCategory(Pool pool)
{
    switch (pool) {
      case Pool::Conflict: return DataCategory::KernelOther;
      case Pool::Shared:   return DataCategory::FreqShared;
      case Pool::Private:  return DataCategory::KernelPrivate;
      case Pool::Update:   return DataCategory::InfreqComm;
      case Pool::Block:    return DataCategory::OtherShared;
    }
    return DataCategory::KernelOther;
}

/** Regions, all in kernel space and disjoint from each other. */
constexpr Addr conflictBase = kernelSpaceBase;
constexpr Addr sharedBase = kernelSpaceBase + 0x10000;
constexpr Addr updatePageBase = kernelSpaceBase + 0x20000;
constexpr Addr privateBase = kernelSpaceBase + 0x40000;
constexpr Addr blockBase = kernelSpaceBase + 0x60000;
constexpr Addr lockPageBase = kernelSpaceBase + 0x70000;

} // namespace

FuzzCase
makeFuzzCase(std::uint64_t seed)
{
    Rng rng(seed);
    FuzzCase fc;
    fc.seed = seed;

    // Tiny caches so every pool collides constantly: 64 primary sets,
    // 64-128 secondary sets.
    MachineConfig &m = fc.machine;
    if (rng.chance(0.4)) {
        // Multi-socket geometries: the oracle is timing-blind, so
        // the two-level interconnect must leave functional behaviour
        // untouched at every shape.  Small home granules make home
        // sockets alternate inside every address pool.
        constexpr std::pair<unsigned, unsigned> geometries[] = {
            {2, 2}, {2, 3}, {2, 4}, {4, 2}};
        const auto &[sockets, per] =
            geometries[rng.below(std::size(geometries))];
        m.numSockets = sockets;
        m.numCpus = sockets * per;
        constexpr std::uint32_t granules[] = {64, 256, 4096};
        m.homeGranule = granules[rng.below(std::size(granules))];
    } else {
        m.numCpus = unsigned(2 + rng.below(3));
    }
    m.l1Size = 1024;
    m.l1LineSize = 16;
    m.iCacheSize = 1024;
    m.l2Size = rng.chance(0.5) ? 2048 : 4096;
    m.l2LineSize = 32;
    m.protocol = rng.chance(0.3) ? CoherenceProtocol::Msi
                                 : CoherenceProtocol::Illinois;

    constexpr BlockScheme schemes[] = {
        BlockScheme::Base, BlockScheme::Pref, BlockScheme::Bypass,
        BlockScheme::ByPref, BlockScheme::Dma,
    };
    fc.scheme = schemes[rng.below(std::size(schemes))];

    fc.trace = Trace(m.numCpus);
    Trace &trace = fc.trace;
    if (rng.chance(0.5))
        trace.updatePages().insert(updatePageBase);

    const auto poolAddr = [&](Pool pool, CpuId cpu) -> Addr {
        switch (pool) {
          case Pool::Conflict:
            // Same primary set: line stride equal to the cache size.
            return conflictBase + rng.below(4) * m.l1Size +
                   rng.below(m.l1LineSize / 4) * 4;
          case Pool::Shared:
            return sharedBase + rng.below(6) * m.l2LineSize +
                   rng.below(m.l2LineSize / 4) * 4;
          case Pool::Private:
            return privateBase + Addr{cpu} * 0x1000 + rng.below(64) * 4;
          case Pool::Update:
            return updatePageBase + rng.below(8) * m.l1LineSize +
                   rng.below(m.l1LineSize / 4) * 4;
          case Pool::Block:
            return blockBase + rng.below(0x2000 / 4) * 4;
        }
        return conflictBase;
    };

    const Addr lockAddrs[2] = {lockPageBase, lockPageBase + 64};
    const Addr barrierAddr = lockPageBase + 128;
    const bool os = true;

    // One data/prefetch record for a pool address.
    const auto dataRecord = [&](CpuId cpu) -> TraceRecord {
        const Pool pool = pickPool(rng);
        const Addr addr = poolAddr(pool, cpu);
        const DataCategory cat = poolCategory(pool);
        const double roll = rng.uniform();
        if (roll < 0.55)
            return TraceRecord::read(addr, cat, BasicBlockId(rng.below(16)),
                                     os);
        if (roll < 0.90)
            return TraceRecord::write(addr, cat,
                                      BasicBlockId(rng.below(16)), os);
        return TraceRecord::prefetch(addr, cat,
                                     BasicBlockId(rng.below(16)), os);
    };

    const auto emitBurst = [&](CpuId cpu) {
        RecordStream &s = trace.stream(cpu);
        const std::uint64_t burst = rng.range(3, 10);
        for (std::uint64_t i = 0; i < burst; ++i) {
            const double roll = rng.uniform();
            if (roll < 0.70) {
                s.push_back(dataRecord(cpu));
                // Adversarial duplication of benign data records.
                if (rng.chance(0.05))
                    s.push_back(s.back());
            } else if (roll < 0.78) {
                s.push_back(TraceRecord::exec(
                    std::uint32_t(rng.range(1, 100)),
                    BasicBlockId(rng.below(8)), os));
            } else if (roll < 0.82) {
                s.push_back(TraceRecord::idle(
                    std::uint32_t(rng.range(1, 50))));
            } else if (roll < 0.88) {
                // A block operation, begin/end bracketed.
                BlockOp op;
                op.kind = rng.chance(0.4) ? BlockOpKind::Zero
                                          : BlockOpKind::Copy;
                op.size = std::uint32_t((1 + rng.below(16)) * m.l1LineSize);
                op.src = blockBase + rng.below(64) * m.l1LineSize;
                op.dst = blockBase + 0x4000 + rng.below(64) * m.l1LineSize;
                op.readOnlyAfter = rng.chance(0.3);
                const BlockOpId id = trace.blockOps().add(op);
                TraceRecord begin;
                begin.type = RecordType::BlockOpBegin;
                begin.aux = id;
                begin.flags = flagOs;
                s.push_back(begin);
                TraceRecord end = begin;
                end.type = RecordType::BlockOpEnd;
                s.push_back(end);
            } else {
                // A balanced lock episode around a few shared accesses.
                const Addr lock = lockAddrs[rng.below(2)];
                TraceRecord acq;
                acq.type = RecordType::LockAcquire;
                acq.addr = lock;
                acq.category = DataCategory::Lock;
                acq.flags = flagOs;
                s.push_back(acq);
                const std::uint64_t inner = rng.range(1, 3);
                for (std::uint64_t k = 0; k < inner; ++k)
                    s.push_back(dataRecord(cpu));
                TraceRecord rel = acq;
                rel.type = RecordType::LockRelease;
                s.push_back(rel);
            }
        }
    };

    // Rounds of per-processor bursts; some rounds end in a barrier
    // that every processor arrives at, keeping the counts balanced.
    const std::uint64_t rounds = rng.range(20, 50);
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (CpuId cpu = 0; cpu < m.numCpus; ++cpu)
            emitBurst(cpu);
        if (rng.chance(0.15)) {
            for (CpuId cpu = 0; cpu < m.numCpus; ++cpu) {
                TraceRecord arrive;
                arrive.type = RecordType::BarrierArrive;
                arrive.addr = barrierAddr;
                arrive.aux = m.numCpus;
                arrive.category = DataCategory::Barrier;
                arrive.flags = flagOs;
                trace.stream(cpu).push_back(arrive);
            }
        }
    }

    // Truncate non-synchronizing tails: chop trailing data/exec/idle
    // records (never into a sync or block-op bracket, which the
    // engine treats as trace corruption).
    for (CpuId cpu = 0; cpu < m.numCpus; ++cpu) {
        if (!rng.chance(0.3))
            continue;
        RecordStream &s = trace.stream(cpu);
        std::size_t safe = 0;
        while (safe < s.size()) {
            const RecordType t = s[s.size() - 1 - safe].type;
            if (t != RecordType::Read && t != RecordType::Write &&
                t != RecordType::Prefetch && t != RecordType::Exec &&
                t != RecordType::Idle)
                break;
            ++safe;
        }
        if (safe > 0)
            s.resize(s.size() - rng.below(safe + 1));
    }

    return fc;
}

FuzzReport
fuzzOne(std::uint64_t seed)
{
    FuzzCase fc = makeFuzzCase(seed);
    FuzzReport report;
    report.seed = seed;
    report.scheme = fc.scheme;
    report.records = fc.trace.totalRecords();

    MaterializedTraceSource source(fc.trace);
    SimOptions options;
    report.diff = runDiff(source, fc.machine, options, fc.scheme);
    return report;
}

} // namespace dft
} // namespace oscache
