#include "sim/system.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.hh"

namespace oscache
{

System::System(TraceSource &source_, MemorySystem &mem_,
               BlockOpExecutor &executor_, const SimOptions &options,
               SimStats &stats)
    : source(source_), mem(mem_), executor(executor_), opts(options),
      simStats(stats), cur(&stats), cpus(source_.numCpus())
{
    attach();
}

System::System(const Trace &trace_, MemorySystem &mem_,
               BlockOpExecutor &executor_, const SimOptions &options,
               SimStats &stats)
    : ownedSource(std::make_unique<MaterializedTraceSource>(trace_)),
      source(*ownedSource), mem(mem_), executor(executor_), opts(options),
      simStats(stats), cur(&stats), cpus(trace_.numCpus())
{
    attach();
}

void
System::setSampling(SampleController *controller, SimStats *warm_sink)
{
    if (controller != nullptr && warm_sink == nullptr)
        panic("System::setSampling: controller without a warm sink");
    sampler = controller;
    warmSink = warm_sink;
    if (sampler == nullptr)
        cur = &simStats;
}

bool
System::quiescent() const
{
    for (const CpuState &cs : cpus)
        if (cs.state == CpuRunState::SpinLock ||
            cs.state == CpuRunState::SpinBarrier)
            return false;
    return true;
}

void
System::attach()
{
    if (source.numCpus() != mem.config().numCpus)
        fatal("System: trace has ", source.numCpus(),
              " cpus but machine has ", mem.config().numCpus);
    mem.setUpdatePages(&source.updatePages());
    cursors.reserve(source.numCpus());
    for (CpuId cpu = 0; cpu < source.numCpus(); ++cpu)
        cursors.push_back(source.cursor(cpu));
}

void
System::run()
{
    // Sampling interleaves phase queries and live-point checkpoints
    // between records, so it keeps the step-at-a-time loop.
    if (sampler != nullptr) {
        while (tick()) {
        }
        return;
    }
    if (opts.modelICache)
        runBatched<true>();
    else
        runBatched<false>();
}

template <bool ModelICache>
void
System::runBatched()
{
    const unsigned num_cpus = source.numCpus();
    for (;;) {
        // One pass computes the exact tick() schedule (smallest
        // local time, ties broken toward the lowest id) and the
        // runner-up: the smallest time among the other live
        // processors, again with the lowest id among its achievers.
        // Iterating in id order keeps both tie-breaks right — a
        // demoted leader has a lower id than everything after it.
        CpuId best = 0, rival = 0;
        bool any = false, has_rival = false;
        Cycles best_time = 0;
        Cycles rival_time = ~Cycles{0};
        for (unsigned c = 0; c < num_cpus; ++c) {
            const CpuState &st = cpus[c];
            if (st.state == CpuRunState::Done)
                continue;
            if (!any) {
                any = true;
                best = CpuId(c);
                best_time = st.time;
            } else if (st.time < best_time) {
                rival = best;
                rival_time = best_time;
                has_rival = true;
                best = CpuId(c);
                best_time = st.time;
            } else if (st.time < rival_time) {
                rival = CpuId(c);
                rival_time = st.time;
                has_rival = true;
            }
        }
        if (!any)
            return;
        if (cpus[best].state != CpuRunState::Running) {
            // Spinning on a lock or barrier: the retiming logic and
            // its spin bookkeeping live in step().
            step(best);
            continue;
        }
        if (!has_rival) {
            // Alone: nothing can preempt the batch before a complex
            // record or end of stream.
            rival = best;
            rival_time = ~Cycles{0};
        }

        CpuState &cs = cpus[best];
        RecordCursor &cursor = *cursors[best];
        bool yield = false;
        while (!yield) {
            const TraceRecord *span = nullptr;
            const std::size_t n = cursor.peekRun(span);
            if (n == 0) {
                cs.state = CpuRunState::Done;
                break;
            }
            std::size_t used = 0;
            bool complex_head = false;
            while (used < n) {
                const TraceRecord &rec = span[used];
                switch (rec.type) {
                  case RecordType::Exec:
                    applyExec<ModelICache>(best, rec);
                    break;
                  case RecordType::Idle:
                    cur->idle += rec.aux;
                    cs.time += rec.aux;
                    break;
                  case RecordType::Read:
                    applyRead(best, rec);
                    break;
                  case RecordType::Write:
                    applyWrite(best, rec);
                    break;
                  case RecordType::Prefetch:
                    applyPrefetch(best, rec);
                    break;
                  case RecordType::BlockOpEnd:
                    // The Begin handler already did the work.
                    break;
                  default:
                    complex_head = true;
                    break;
                }
                if (complex_head)
                    break;
                ++used;
                // best holds the processor while it still beats the
                // runner-up under the tick() tie-break: strictly
                // earlier, or equal with the lower id.
                if (cs.time > rival_time ||
                    (cs.time == rival_time && rival < best)) {
                    yield = true;
                    break;
                }
            }
            if (used > 0) {
                cursor.advanceRun(used);
                consecutiveSpins = 0;
            }
            if (complex_head) {
                // A block-op or synchronization record: run it
                // through the step path, whose handlers may suspend
                // the processor or touch the shared sync tables.
                step(best);
                break;
            }
        }
    }
}

bool
System::tick()
{
    const unsigned num_cpus = source.numCpus();
    CpuId best = 0;
    bool any = false;
    Cycles best_time = 0;
    for (CpuId c = 0; c < num_cpus; ++c) {
        if (cpus[c].state == CpuRunState::Done)
            continue;
        if (!any || cpus[c].time < best_time) {
            any = true;
            best = c;
            best_time = cpus[c].time;
        }
    }
    if (!any)
        return false;
    step(best);
    return true;
}

Cycles
System::imissCycles(CpuId cpu, std::uint64_t instrs, bool os)
{
    const double cpi = os ? opts.osImissCpi : opts.userImissCpi;
    double total = cpus[cpu].imissCarry + static_cast<double>(instrs) * cpi;
    const Cycles whole = static_cast<Cycles>(total);
    cpus[cpu].imissCarry = total - static_cast<double>(whole);
    return whole;
}

void
System::syncRmw(CpuId cpu, Addr addr, DataCategory cat, bool os)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = os;
    ctx.category = cat;
    const AccessResult rd = mem.read(cpu, addr, cs.time, ctx);
    cur->recordRead(os, false, cat, invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    const AccessResult wr = mem.write(cpu, addr, cs.time, ctx);
    cur->recordWrite(os, false, wr);
    cs.time = wr.completeAt;
}

bool
System::maybeBreakSpin(CpuId cpu)
{
    CpuState &cs = cpus[cpu];
    if (sampler == nullptr ||
        cs.time - cs.spinStart < sampler->spinBreakCycles())
        return false;
    // The record that would have released this wait fell in a
    // skipped stretch; repair locally so replay makes progress.
    ++syncBreakCount;
    if (cs.state == CpuRunState::SpinLock) {
        auto &lock = locks[cs.waitAddr];
        syncRmw(cpu, cs.waitAddr, DataCategory::Lock, true);
        lock.held = true;
        lock.holder = cpu;
    } else {
        AccessContext ctx;
        ctx.os = true;
        ctx.category = DataCategory::Barrier;
        const AccessResult rd = mem.read(cpu, cs.waitAddr, cs.time, ctx);
        cur->recordRead(true, false, DataCategory::Barrier,
                        invalidBasicBlock, rd);
        cs.time = rd.completeAt;
    }
    cs.state = CpuRunState::Running;
    cursors[cpu]->advance();
    consecutiveSpins = 0;
    return true;
}

void
System::step(CpuId cpu)
{
    CpuState &cs = cpus[cpu];

    // Route this step's statistics: measured windows record into the
    // primary sink, functional-warming windows into the scratch one.
    if (sampler != nullptr)
        cur = sampler->phaseFor(cpu) == SamplePhase::Measure ? &simStats
                                                             : warmSink;

    if (cs.state == CpuRunState::SpinLock) {
        auto &lock = locks[cs.waitAddr];
        if (!lock.held) {
            // Lock became free: the release write invalidated our
            // copy, so this re-read plus test-and-set misses.
            syncRmw(cpu, cs.waitAddr, DataCategory::Lock, true);
            lock.held = true;
            lock.holder = cpu;
            cs.state = CpuRunState::Running;
            cursors[cpu]->advance();
            consecutiveSpins = 0;
        } else if (!maybeBreakSpin(cpu)) {
            cs.time += opts.spinQuantum;
            cur->osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: lock deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    if (cs.state == CpuRunState::SpinBarrier) {
        auto &bar = barriers[cs.waitAddr];
        if (bar.episode > cs.waitEpisode) {
            if (bar.releaseAt > cs.time) {
                cur->osSpin += bar.releaseAt - cs.time;
                cs.time = bar.releaseAt;
            }
            // The releasing write invalidated (or, under the update
            // protocol, updated in place) the spinners' copies; this
            // read observes the release.
            AccessContext ctx;
            ctx.os = true;
            ctx.category = DataCategory::Barrier;
            const AccessResult rd = mem.read(cpu, cs.waitAddr, cs.time, ctx);
            cur->recordRead(true, false, DataCategory::Barrier,
                            invalidBasicBlock, rd);
            cs.time = rd.completeAt;
            cs.state = CpuRunState::Running;
            cursors[cpu]->advance();
            consecutiveSpins = 0;
        } else if (!maybeBreakSpin(cpu)) {
            cs.time += opts.spinQuantum;
            cur->osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: barrier deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    const TraceRecord *next = cursors[cpu]->peek();
    if (next == nullptr) {
        cs.state = CpuRunState::Done;
        return;
    }
    // Copy: on streamed sources the peeked storage is recycled once
    // a handler advances the cursor.
    const TraceRecord rec = *next;
    consecutiveSpins = 0;

    switch (rec.type) {
      case RecordType::Exec:
        handleExec(cpu, rec);
        break;
      case RecordType::Idle:
        cur->idle += rec.aux;
        cs.time += rec.aux;
        cursors[cpu]->advance();
        break;
      case RecordType::Read:
      case RecordType::Write:
      case RecordType::Prefetch:
        handleData(cpu, rec);
        break;
      case RecordType::BlockOpBegin:
        handleBlockOp(cpu, rec);
        break;
      case RecordType::BlockOpEnd:
        cursors[cpu]->advance(); // The Begin handler already did the work.
        break;
      case RecordType::LockAcquire:
        handleLockAcquire(cpu, rec);
        break;
      case RecordType::LockRelease:
        handleLockRelease(cpu, rec);
        break;
      case RecordType::BarrierArrive:
        handleBarrier(cpu, rec);
        break;
    }
}

template <bool ModelICache>
void
System::applyExec(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    const Cycles exec = rec.aux;
    // Instruction footprint: each basic block owns a stretch of the
    // code segment proportional to the instructions executed under
    // its id (capped at 4 KB).
    Cycles imiss = 0;
    if (rec.bb != invalidBasicBlock) {
        const Addr code_base = codeSpaceBase + Addr{rec.bb} * 4096;
        const std::uint32_t bytes =
            std::min<std::uint32_t>(4096, rec.aux * 8);
        if constexpr (ModelICache) {
            // Detailed model: probe the primary I-cache and charge
            // the real fill latencies.
            imiss = mem.instructionFetch(cpu, code_base, bytes, cs.time);
        } else {
            // Statistical model: capacity effect on the unified L2
            // plus a calibrated per-instruction charge.
            mem.codeFill(cpu, code_base, bytes);
            imiss = imissCycles(cpu, rec.aux, rec.isOs());
        }
    } else {
        imiss = imissCycles(cpu, rec.aux, rec.isOs());
    }
    cur->recordExec(rec.isOs(), rec.isBlockOpBody(), rec.aux, exec,
                    imiss);
    cs.time += exec + imiss;
}

void
System::applyRead(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.blockOpBody = rec.isBlockOpBody();
    ctx.category = rec.category;
    ctx.bb = rec.bb;
    const AccessResult res = mem.read(cpu, rec.addr, cs.time, ctx);
    cur->recordRead(ctx.os, ctx.blockOpBody, ctx.category, ctx.bb, res);
    cs.time = res.completeAt;
}

void
System::applyWrite(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.blockOpBody = rec.isBlockOpBody();
    ctx.category = rec.category;
    ctx.bb = rec.bb;
    const AccessResult res = mem.write(cpu, rec.addr, cs.time, ctx);
    cur->recordWrite(ctx.os, ctx.blockOpBody, res);
    cs.time = res.completeAt;
}

void
System::applyPrefetch(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.blockOpBody = rec.isBlockOpBody();
    ctx.category = rec.category;
    ctx.bb = rec.bb;
    mem.prefetch(cpu, rec.addr, cs.time, ctx);
    cur->recordExec(ctx.os, false, 1, 1, 0);
    cs.time += 1;
}

void
System::handleExec(CpuId cpu, const TraceRecord &rec)
{
    if (opts.modelICache)
        applyExec<true>(cpu, rec);
    else
        applyExec<false>(cpu, rec);
    cursors[cpu]->advance();
}

void
System::handleData(CpuId cpu, const TraceRecord &rec)
{
    if (rec.type == RecordType::Read)
        applyRead(cpu, rec);
    else if (rec.type == RecordType::Write)
        applyWrite(cpu, rec);
    else
        applyPrefetch(cpu, rec);
    cursors[cpu]->advance();
}

void
System::handleBlockOp(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    // By value: on streamed sources the table may grow (and its
    // storage move) while other processors' cursors refill.
    const BlockOp op = source.blockOps().get(rec.aux);
    const Cycles start = cs.time;
    if (sampler != nullptr)
        executor.retargetStats(*cur);
    cs.time = executor.execute(cpu, op, cs.time, rec.isOs());
    if (mem.observers().active())
        mem.observers().onBlockOp(cpu, op, start, cs.time);
    cursors[cpu]->advance();
}

void
System::handleLockAcquire(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &lock = locks[rec.addr];
    if (!lock.held) {
        syncRmw(cpu, rec.addr, DataCategory::Lock, rec.isOs());
        lock.held = true;
        lock.holder = cpu;
        cursors[cpu]->advance();
        return;
    }
    if (lock.holder == cpu) {
        if (sampler != nullptr) {
            // The matching release was skipped; treat as re-entry.
            ++syncBreakCount;
            cursors[cpu]->advance();
            return;
        }
        panic("System: cpu ", int(cpu), " re-acquiring held lock ",
              rec.addr);
    }
    // Contended: one read observes the held lock, then spin locally.
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult rd = mem.read(cpu, rec.addr, cs.time, ctx);
    cur->recordRead(ctx.os, false, DataCategory::Lock,
                    invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    cs.state = CpuRunState::SpinLock;
    cs.waitAddr = rec.addr;
    cs.spinStart = cs.time;
}

void
System::handleLockRelease(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto it = locks.find(rec.addr);
    const bool matched = it != locks.end() && it->second.held &&
                         it->second.holder == cpu;
    if (!matched) {
        if (sampler == nullptr)
            panic("System: cpu ", int(cpu), " releasing lock ", rec.addr,
                  " it does not hold");
        // The matching acquire was skipped; perform the release write
        // anyway so the lock ends up free.
        ++syncBreakCount;
    }
    // Release consistency: drain buffered writes before the release.
    cs.time = mem.fence(cpu, cs.time);
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult wr = mem.write(cpu, rec.addr, cs.time, ctx);
    cur->recordWrite(ctx.os, false, wr);
    cs.time = wr.completeAt;
    locks[rec.addr].held = false;
    cursors[cpu]->advance();
}

void
System::handleBarrier(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &bar = barriers[rec.addr];
    const std::uint32_t parties = rec.aux;

    // Release semantics, then the arrival read-modify-write.
    cs.time = mem.fence(cpu, cs.time);
    syncRmw(cpu, rec.addr, DataCategory::Barrier, rec.isOs());

    bar.arrived += 1;
    if (bar.arrived >= parties) {
        // Last arriver releases the episode.
        bar.arrived = 0;
        bar.episode += 1;
        bar.releaseAt = cs.time;
        cursors[cpu]->advance();
    } else {
        cs.state = CpuRunState::SpinBarrier;
        cs.waitAddr = rec.addr;
        cs.waitEpisode = bar.episode;
        cs.spinStart = cs.time;
    }
}

void
System::saveState(binio::BinaryWriter &w) const
{
    w.put(std::uint32_t(cpus.size()));
    for (const CpuState &cs : cpus) {
        w.put(cs.time);
        w.put(std::uint8_t(cs.state));
        w.put(cs.waitAddr);
        w.put(cs.waitEpisode);
        w.put(cs.imissCarry);
        w.put(cs.spinStart);
    }
    // Maps serialized sorted so identical states produce identical
    // bytes (the checkpoint store is content-addressed).
    std::vector<std::pair<Addr, LockState>> lks(locks.begin(), locks.end());
    std::sort(lks.begin(), lks.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.put(std::uint64_t(lks.size()));
    for (const auto &[addr, lock] : lks) {
        w.put(addr);
        w.put(std::uint8_t(lock.held));
        w.put(lock.holder);
    }
    std::vector<std::pair<Addr, BarrierState>> bars(barriers.begin(),
                                                    barriers.end());
    std::sort(bars.begin(), bars.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.put(std::uint64_t(bars.size()));
    for (const auto &[addr, bar] : bars) {
        w.put(addr);
        w.put(bar.arrived);
        w.put(bar.episode);
        w.put(bar.releaseAt);
    }
    w.put(consecutiveSpins);
    w.put(syncBreakCount);
}

bool
System::loadState(binio::BinaryReader &r, std::string *error)
{
    const auto fail = [error](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    std::uint32_t n = 0;
    if (!r.get(n) || n != cpus.size())
        return fail("cpu count mismatch");
    for (CpuState &cs : cpus) {
        std::uint8_t state = 0;
        if (!r.get(cs.time) || !r.get(state) || !r.get(cs.waitAddr) ||
            !r.get(cs.waitEpisode) || !r.get(cs.imissCarry) ||
            !r.get(cs.spinStart))
            return fail("truncated cpu state");
        if (state > std::uint8_t(CpuRunState::Done))
            return fail("bad cpu run state");
        cs.state = CpuRunState(state);
    }
    std::uint64_t count = 0;
    if (!r.get(count) || count > (1u << 24))
        return fail("bad lock count");
    locks.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr addr = 0;
        std::uint8_t held = 0;
        LockState lock;
        if (!r.get(addr) || !r.get(held) || !r.get(lock.holder))
            return fail("truncated lock table");
        lock.held = held != 0;
        locks.emplace(addr, lock);
    }
    if (!r.get(count) || count > (1u << 24))
        return fail("bad barrier count");
    barriers.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr addr = 0;
        BarrierState bar;
        if (!r.get(addr) || !r.get(bar.arrived) || !r.get(bar.episode) ||
            !r.get(bar.releaseAt))
            return fail("truncated barrier table");
        barriers.emplace(addr, bar);
    }
    if (!r.get(consecutiveSpins) || !r.get(syncBreakCount))
        return fail("truncated spin counters");
    return true;
}

} // namespace oscache
