#include "sim/system.hh"

#include <cmath>

#include "common/log.hh"

namespace oscache
{

System::System(TraceSource &source_, MemorySystem &mem_,
               BlockOpExecutor &executor_, const SimOptions &options,
               SimStats &stats)
    : source(source_), mem(mem_), executor(executor_), opts(options),
      simStats(stats), cpus(source_.numCpus())
{
    attach();
}

System::System(const Trace &trace_, MemorySystem &mem_,
               BlockOpExecutor &executor_, const SimOptions &options,
               SimStats &stats)
    : ownedSource(std::make_unique<MaterializedTraceSource>(trace_)),
      source(*ownedSource), mem(mem_), executor(executor_), opts(options),
      simStats(stats), cpus(trace_.numCpus())
{
    attach();
}

void
System::attach()
{
    if (source.numCpus() != mem.config().numCpus)
        fatal("System: trace has ", source.numCpus(),
              " cpus but machine has ", mem.config().numCpus);
    mem.setUpdatePages(&source.updatePages());
    cursors.reserve(source.numCpus());
    for (CpuId cpu = 0; cpu < source.numCpus(); ++cpu)
        cursors.push_back(source.cursor(cpu));
}

void
System::run()
{
    const unsigned num_cpus = source.numCpus();
    while (true) {
        CpuId best = 0;
        bool any = false;
        Cycles best_time = 0;
        for (CpuId c = 0; c < num_cpus; ++c) {
            if (cpus[c].state == CpuRunState::Done)
                continue;
            if (!any || cpus[c].time < best_time) {
                any = true;
                best = c;
                best_time = cpus[c].time;
            }
        }
        if (!any)
            break;
        step(best);
    }
}

Cycles
System::imissCycles(CpuId cpu, std::uint64_t instrs, bool os)
{
    const double cpi = os ? opts.osImissCpi : opts.userImissCpi;
    double total = cpus[cpu].imissCarry + static_cast<double>(instrs) * cpi;
    const Cycles whole = static_cast<Cycles>(total);
    cpus[cpu].imissCarry = total - static_cast<double>(whole);
    return whole;
}

void
System::syncRmw(CpuId cpu, Addr addr, DataCategory cat, bool os)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = os;
    ctx.category = cat;
    const AccessResult rd = mem.read(cpu, addr, cs.time, ctx);
    simStats.recordRead(os, false, cat, invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    const AccessResult wr = mem.write(cpu, addr, cs.time, ctx);
    simStats.recordWrite(os, false, wr);
    cs.time = wr.completeAt;
}

void
System::step(CpuId cpu)
{
    CpuState &cs = cpus[cpu];

    if (cs.state == CpuRunState::SpinLock) {
        auto &lock = locks[cs.waitAddr];
        if (!lock.held) {
            // Lock became free: the release write invalidated our
            // copy, so this re-read plus test-and-set misses.
            syncRmw(cpu, cs.waitAddr, DataCategory::Lock, true);
            lock.held = true;
            lock.holder = cpu;
            cs.state = CpuRunState::Running;
            cursors[cpu]->advance();
            consecutiveSpins = 0;
        } else {
            cs.time += opts.spinQuantum;
            simStats.osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: lock deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    if (cs.state == CpuRunState::SpinBarrier) {
        auto &bar = barriers[cs.waitAddr];
        if (bar.episode > cs.waitEpisode) {
            if (bar.releaseAt > cs.time) {
                simStats.osSpin += bar.releaseAt - cs.time;
                cs.time = bar.releaseAt;
            }
            // The releasing write invalidated (or, under the update
            // protocol, updated in place) the spinners' copies; this
            // read observes the release.
            AccessContext ctx;
            ctx.os = true;
            ctx.category = DataCategory::Barrier;
            const AccessResult rd = mem.read(cpu, cs.waitAddr, cs.time, ctx);
            simStats.recordRead(true, false, DataCategory::Barrier,
                                invalidBasicBlock, rd);
            cs.time = rd.completeAt;
            cs.state = CpuRunState::Running;
            cursors[cpu]->advance();
            consecutiveSpins = 0;
        } else {
            cs.time += opts.spinQuantum;
            simStats.osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: barrier deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    const TraceRecord *next = cursors[cpu]->peek();
    if (next == nullptr) {
        cs.state = CpuRunState::Done;
        return;
    }
    // Copy: on streamed sources the peeked storage is recycled once
    // a handler advances the cursor.
    const TraceRecord rec = *next;
    consecutiveSpins = 0;

    switch (rec.type) {
      case RecordType::Exec:
        handleExec(cpu, rec);
        break;
      case RecordType::Idle:
        simStats.idle += rec.aux;
        cs.time += rec.aux;
        cursors[cpu]->advance();
        break;
      case RecordType::Read:
      case RecordType::Write:
      case RecordType::Prefetch:
        handleData(cpu, rec);
        break;
      case RecordType::BlockOpBegin:
        handleBlockOp(cpu, rec);
        break;
      case RecordType::BlockOpEnd:
        cursors[cpu]->advance(); // The Begin handler already did the work.
        break;
      case RecordType::LockAcquire:
        handleLockAcquire(cpu, rec);
        break;
      case RecordType::LockRelease:
        handleLockRelease(cpu, rec);
        break;
      case RecordType::BarrierArrive:
        handleBarrier(cpu, rec);
        break;
    }
}

void
System::handleExec(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    const Cycles exec = rec.aux;
    // Instruction footprint: each basic block owns a stretch of the
    // code segment proportional to the instructions executed under
    // its id (capped at 4 KB).
    Cycles imiss = 0;
    if (rec.bb != invalidBasicBlock) {
        const Addr code_base = codeSpaceBase + Addr{rec.bb} * 4096;
        const std::uint32_t bytes =
            std::min<std::uint32_t>(4096, rec.aux * 8);
        if (opts.modelICache) {
            // Detailed model: probe the primary I-cache and charge
            // the real fill latencies.
            imiss = mem.instructionFetch(cpu, code_base, bytes, cs.time);
        } else {
            // Statistical model: capacity effect on the unified L2
            // plus a calibrated per-instruction charge.
            mem.codeFill(cpu, code_base, bytes);
            imiss = imissCycles(cpu, rec.aux, rec.isOs());
        }
    } else {
        imiss = imissCycles(cpu, rec.aux, rec.isOs());
    }
    simStats.recordExec(rec.isOs(), rec.isBlockOpBody(), rec.aux, exec,
                        imiss);
    cs.time += exec + imiss;
    cursors[cpu]->advance();
}

void
System::handleData(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.blockOpBody = rec.isBlockOpBody();
    ctx.category = rec.category;
    ctx.bb = rec.bb;

    if (rec.type == RecordType::Read) {
        const AccessResult res = mem.read(cpu, rec.addr, cs.time, ctx);
        simStats.recordRead(ctx.os, ctx.blockOpBody, ctx.category, ctx.bb,
                            res);
        cs.time = res.completeAt;
    } else if (rec.type == RecordType::Write) {
        const AccessResult res = mem.write(cpu, rec.addr, cs.time, ctx);
        simStats.recordWrite(ctx.os, ctx.blockOpBody, res);
        cs.time = res.completeAt;
    } else {
        mem.prefetch(cpu, rec.addr, cs.time, ctx);
        simStats.recordExec(ctx.os, false, 1, 1, 0);
        cs.time += 1;
    }
    cursors[cpu]->advance();
}

void
System::handleBlockOp(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    // By value: on streamed sources the table may grow (and its
    // storage move) while other processors' cursors refill.
    const BlockOp op = source.blockOps().get(rec.aux);
    const Cycles start = cs.time;
    cs.time = executor.execute(cpu, op, cs.time, rec.isOs());
    if (MemEventObserver *obs = mem.eventObserver())
        obs->onBlockOp(cpu, op, start, cs.time);
    cursors[cpu]->advance();
}

void
System::handleLockAcquire(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &lock = locks[rec.addr];
    if (!lock.held) {
        syncRmw(cpu, rec.addr, DataCategory::Lock, rec.isOs());
        lock.held = true;
        lock.holder = cpu;
        cursors[cpu]->advance();
        return;
    }
    if (lock.holder == cpu)
        panic("System: cpu ", int(cpu), " re-acquiring held lock ",
              rec.addr);
    // Contended: one read observes the held lock, then spin locally.
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult rd = mem.read(cpu, rec.addr, cs.time, ctx);
    simStats.recordRead(ctx.os, false, DataCategory::Lock,
                        invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    cs.state = CpuRunState::SpinLock;
    cs.waitAddr = rec.addr;
}

void
System::handleLockRelease(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto it = locks.find(rec.addr);
    if (it == locks.end() || !it->second.held || it->second.holder != cpu)
        panic("System: cpu ", int(cpu), " releasing lock ", rec.addr,
              " it does not hold");
    // Release consistency: drain buffered writes before the release.
    cs.time = mem.fence(cpu, cs.time);
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult wr = mem.write(cpu, rec.addr, cs.time, ctx);
    simStats.recordWrite(ctx.os, false, wr);
    cs.time = wr.completeAt;
    it->second.held = false;
    cursors[cpu]->advance();
}

void
System::handleBarrier(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &bar = barriers[rec.addr];
    const std::uint32_t parties = rec.aux;

    // Release semantics, then the arrival read-modify-write.
    cs.time = mem.fence(cpu, cs.time);
    syncRmw(cpu, rec.addr, DataCategory::Barrier, rec.isOs());

    bar.arrived += 1;
    if (bar.arrived >= parties) {
        // Last arriver releases the episode.
        bar.arrived = 0;
        bar.episode += 1;
        bar.releaseAt = cs.time;
        cursors[cpu]->advance();
    } else {
        cs.state = CpuRunState::SpinBarrier;
        cs.waitAddr = rec.addr;
        cs.waitEpisode = bar.episode;
    }
}

} // namespace oscache
