#include "sim/system.hh"

#include <cmath>

#include "common/log.hh"

namespace oscache
{

System::System(const Trace &trace_, MemorySystem &mem_,
               BlockOpExecutor &executor_, const SimOptions &options,
               SimStats &stats)
    : trace(trace_), mem(mem_), executor(executor_), opts(options),
      simStats(stats), cpus(trace_.numCpus())
{
    if (trace.numCpus() != mem.config().numCpus)
        fatal("System: trace has ", trace.numCpus(), " cpus but machine has ",
              mem.config().numCpus);
    mem.setUpdatePages(&trace.updatePages());
}

void
System::run()
{
    while (true) {
        CpuId best = 0;
        bool any = false;
        Cycles best_time = 0;
        for (CpuId c = 0; c < trace.numCpus(); ++c) {
            if (cpus[c].state == CpuRunState::Done)
                continue;
            if (!any || cpus[c].time < best_time) {
                any = true;
                best = c;
                best_time = cpus[c].time;
            }
        }
        if (!any)
            break;
        step(best);
    }
}

Cycles
System::imissCycles(CpuId cpu, std::uint64_t instrs, bool os)
{
    const double cpi = os ? opts.osImissCpi : opts.userImissCpi;
    double total = cpus[cpu].imissCarry + static_cast<double>(instrs) * cpi;
    const Cycles whole = static_cast<Cycles>(total);
    cpus[cpu].imissCarry = total - static_cast<double>(whole);
    return whole;
}

void
System::syncRmw(CpuId cpu, Addr addr, DataCategory cat, bool os)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = os;
    ctx.category = cat;
    const AccessResult rd = mem.read(cpu, addr, cs.time, ctx);
    simStats.recordRead(os, false, cat, invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    const AccessResult wr = mem.write(cpu, addr, cs.time, ctx);
    simStats.recordWrite(os, false, wr);
    cs.time = wr.completeAt;
}

void
System::step(CpuId cpu)
{
    CpuState &cs = cpus[cpu];

    if (cs.state == CpuRunState::SpinLock) {
        auto &lock = locks[cs.waitAddr];
        if (!lock.held) {
            // Lock became free: the release write invalidated our
            // copy, so this re-read plus test-and-set misses.
            syncRmw(cpu, cs.waitAddr, DataCategory::Lock, true);
            lock.held = true;
            lock.holder = cpu;
            cs.state = CpuRunState::Running;
            cs.pos += 1;
            consecutiveSpins = 0;
        } else {
            cs.time += opts.spinQuantum;
            simStats.osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: lock deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    if (cs.state == CpuRunState::SpinBarrier) {
        auto &bar = barriers[cs.waitAddr];
        if (bar.episode > cs.waitEpisode) {
            if (bar.releaseAt > cs.time) {
                simStats.osSpin += bar.releaseAt - cs.time;
                cs.time = bar.releaseAt;
            }
            // The releasing write invalidated (or, under the update
            // protocol, updated in place) the spinners' copies; this
            // read observes the release.
            AccessContext ctx;
            ctx.os = true;
            ctx.category = DataCategory::Barrier;
            const AccessResult rd = mem.read(cpu, cs.waitAddr, cs.time, ctx);
            simStats.recordRead(true, false, DataCategory::Barrier,
                                invalidBasicBlock, rd);
            cs.time = rd.completeAt;
            cs.state = CpuRunState::Running;
            cs.pos += 1;
            consecutiveSpins = 0;
        } else {
            cs.time += opts.spinQuantum;
            simStats.osSpin += opts.spinQuantum;
            if (++consecutiveSpins > spinLimit)
                panic("System: barrier deadlock at addr ", cs.waitAddr);
        }
        return;
    }

    const RecordStream &stream = trace.stream(cpu);
    if (cs.pos >= stream.size()) {
        cs.state = CpuRunState::Done;
        return;
    }
    const TraceRecord &rec = stream[cs.pos];
    consecutiveSpins = 0;

    switch (rec.type) {
      case RecordType::Exec:
        handleExec(cpu, rec);
        break;
      case RecordType::Idle:
        simStats.idle += rec.aux;
        cs.time += rec.aux;
        cs.pos += 1;
        break;
      case RecordType::Read:
      case RecordType::Write:
      case RecordType::Prefetch:
        handleData(cpu, rec);
        break;
      case RecordType::BlockOpBegin:
        handleBlockOp(cpu, rec);
        break;
      case RecordType::BlockOpEnd:
        cs.pos += 1; // The Begin handler already did the work.
        break;
      case RecordType::LockAcquire:
        handleLockAcquire(cpu, rec);
        break;
      case RecordType::LockRelease:
        handleLockRelease(cpu, rec);
        break;
      case RecordType::BarrierArrive:
        handleBarrier(cpu, rec);
        break;
    }
}

void
System::handleExec(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    const Cycles exec = rec.aux;
    // Instruction footprint: each basic block owns a stretch of the
    // code segment proportional to the instructions executed under
    // its id (capped at 4 KB).
    Cycles imiss = 0;
    if (rec.bb != invalidBasicBlock) {
        const Addr code_base = codeSpaceBase + Addr{rec.bb} * 4096;
        const std::uint32_t bytes =
            std::min<std::uint32_t>(4096, rec.aux * 8);
        if (opts.modelICache) {
            // Detailed model: probe the primary I-cache and charge
            // the real fill latencies.
            imiss = mem.instructionFetch(cpu, code_base, bytes, cs.time);
        } else {
            // Statistical model: capacity effect on the unified L2
            // plus a calibrated per-instruction charge.
            mem.codeFill(cpu, code_base, bytes);
            imiss = imissCycles(cpu, rec.aux, rec.isOs());
        }
    } else {
        imiss = imissCycles(cpu, rec.aux, rec.isOs());
    }
    simStats.recordExec(rec.isOs(), rec.isBlockOpBody(), rec.aux, exec,
                        imiss);
    cs.time += exec + imiss;
    cs.pos += 1;
}

void
System::handleData(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.blockOpBody = rec.isBlockOpBody();
    ctx.category = rec.category;
    ctx.bb = rec.bb;

    if (rec.type == RecordType::Read) {
        const AccessResult res = mem.read(cpu, rec.addr, cs.time, ctx);
        simStats.recordRead(ctx.os, ctx.blockOpBody, ctx.category, ctx.bb,
                            res);
        cs.time = res.completeAt;
    } else if (rec.type == RecordType::Write) {
        const AccessResult res = mem.write(cpu, rec.addr, cs.time, ctx);
        simStats.recordWrite(ctx.os, ctx.blockOpBody, res);
        cs.time = res.completeAt;
    } else {
        mem.prefetch(cpu, rec.addr, cs.time, ctx);
        simStats.recordExec(ctx.os, false, 1, 1, 0);
        cs.time += 1;
    }
    cs.pos += 1;
}

void
System::handleBlockOp(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    const BlockOp &op = trace.blockOps().get(rec.aux);
    const Cycles start = cs.time;
    cs.time = executor.execute(cpu, op, cs.time, rec.isOs());
    if (MemEventObserver *obs = mem.eventObserver())
        obs->onBlockOp(cpu, op, start, cs.time);
    cs.pos += 1;
}

void
System::handleLockAcquire(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &lock = locks[rec.addr];
    if (!lock.held) {
        syncRmw(cpu, rec.addr, DataCategory::Lock, rec.isOs());
        lock.held = true;
        lock.holder = cpu;
        cs.pos += 1;
        return;
    }
    if (lock.holder == cpu)
        panic("System: cpu ", int(cpu), " re-acquiring held lock ",
              rec.addr);
    // Contended: one read observes the held lock, then spin locally.
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult rd = mem.read(cpu, rec.addr, cs.time, ctx);
    simStats.recordRead(ctx.os, false, DataCategory::Lock,
                        invalidBasicBlock, rd);
    cs.time = rd.completeAt;
    cs.state = CpuRunState::SpinLock;
    cs.waitAddr = rec.addr;
}

void
System::handleLockRelease(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto it = locks.find(rec.addr);
    if (it == locks.end() || !it->second.held || it->second.holder != cpu)
        panic("System: cpu ", int(cpu), " releasing lock ", rec.addr,
              " it does not hold");
    // Release consistency: drain buffered writes before the release.
    cs.time = mem.fence(cpu, cs.time);
    AccessContext ctx;
    ctx.os = rec.isOs();
    ctx.category = DataCategory::Lock;
    const AccessResult wr = mem.write(cpu, rec.addr, cs.time, ctx);
    simStats.recordWrite(ctx.os, false, wr);
    cs.time = wr.completeAt;
    it->second.held = false;
    cs.pos += 1;
}

void
System::handleBarrier(CpuId cpu, const TraceRecord &rec)
{
    CpuState &cs = cpus[cpu];
    auto &bar = barriers[rec.addr];
    const std::uint32_t parties = rec.aux;

    // Release semantics, then the arrival read-modify-write.
    cs.time = mem.fence(cpu, cs.time);
    syncRmw(cpu, rec.addr, DataCategory::Barrier, rec.isOs());

    bar.arrived += 1;
    if (bar.arrived >= parties) {
        // Last arriver releases the episode.
        bar.arrived = 0;
        bar.episode += 1;
        bar.releaseAt = cs.time;
        cs.pos += 1;
    } else {
        cs.state = CpuRunState::SpinBarrier;
        cs.waitAddr = rec.addr;
        cs.waitEpisode = bar.episode;
    }
}

} // namespace oscache
