/**
 * @file
 * Interface between the processor model and the block-operation
 * schemes of Section 4.
 *
 * The trace stores only BlockOpBegin/BlockOpEnd brackets; the
 * word-by-word body is expanded by a scheme-specific executor,
 * exactly as the paper recodes the kernel's bcopy/bzero per scheme.
 * Concrete executors live in src/core/blockop.
 */

#ifndef OSCACHE_SIM_BLOCKOP_EXECUTOR_HH
#define OSCACHE_SIM_BLOCKOP_EXECUTOR_HH

#include "common/types.hh"
#include "trace/blockop.hh"

namespace oscache
{

struct SimStats;

/**
 * Executes one block operation on behalf of a processor, advancing
 * simulated time and recording statistics.
 */
class BlockOpExecutor
{
  public:
    virtual ~BlockOpExecutor() = default;

    /**
     * Perform @p op for processor @p cpu starting at cycle @p now.
     *
     * @param os True when the operation runs in OS context (block
     *           operations in these workloads always do, but the
     *           interface does not assume it).
     * @return The cycle at which the processor resumes.
     */
    virtual Cycles execute(CpuId cpu, const BlockOp &op, Cycles now,
                           bool os) = 0;

    /**
     * Redirect statistics recording to @p stats.  Called by the
     * engine before each block operation under sampling, so executor
     * misses land in the measured or warm sink along with everything
     * else in the window.  Executors that record nothing may keep
     * the no-op default.
     */
    virtual void retargetStats(SimStats &stats) { (void)stats; }
};

} // namespace oscache

#endif // OSCACHE_SIM_BLOCKOP_EXECUTOR_HH
