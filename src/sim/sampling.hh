/**
 * @file
 * The replay engine's side of statistical sampling (SMARTS-style).
 *
 * The engine itself stays policy-free: a SampleController, installed
 * with System::setSampling(), tells it per processor whether the
 * record about to replay falls in a measured window (stats recorded
 * into the primary sink) or a functional-warming window (caches,
 * bus, and write buffers updated as usual, but stats diverted to a
 * scratch sink).  The policy — window geometry, skipping, confidence
 * intervals, checkpointing — lives in src/sample.
 *
 * Sampling also relaxes the engine's synchronization retiming.  A
 * sampled replay enters the stream mid-way and leaps over unmeasured
 * stretches, so lock/barrier pairings that a full replay could rely
 * on (every release preceded by its acquire, every barrier arrival
 * eventually matched) no longer hold.  Under a controller the engine
 * therefore repairs instead of panics: an unmatched release frees
 * the lock, a re-acquire is treated as re-entry, and a spin that
 * outlives spinBreakCycles() is force-broken.  Each repair is
 * counted (System::syncBreaks()) so the statistics layer can report
 * how much retiming fidelity a given plan gave up.
 */

#ifndef OSCACHE_SIM_SAMPLING_HH
#define OSCACHE_SIM_SAMPLING_HH

#include "common/types.hh"

namespace oscache
{

/** What the replay engine should do with the current record. */
enum class SamplePhase : std::uint8_t
{
    Skip,    ///< Not replayed at all (cursor fast-forwarded).
    Warm,    ///< Replayed for state, stats diverted to the warm sink.
    Measure, ///< Replayed and measured.
};

/** Per-processor phase oracle installed into System::setSampling(). */
class SampleController
{
  public:
    virtual ~SampleController() = default;

    /** Phase of the record @p cpu is about to replay. */
    virtual SamplePhase phaseFor(CpuId cpu) = 0;

    /**
     * Simulated cycles a processor may spin on one lock or barrier
     * before the engine force-breaks the wait (sampling can skip the
     * record that would have released it).
     */
    virtual Cycles spinBreakCycles() const { return 1'000'000; }
};

} // namespace oscache

#endif // OSCACHE_SIM_SAMPLING_HH
