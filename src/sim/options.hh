/**
 * @file
 * Tunable parameters of the simulation engine that are not hardware
 * configuration (those live in MachineConfig).
 */

#ifndef OSCACHE_SIM_OPTIONS_HH
#define OSCACHE_SIM_OPTIONS_HH

#include "common/types.hh"
#include "obs/options.hh"

namespace oscache
{

/** Behavioural knobs of the trace-driven processor model. */
struct SimOptions
{
    /**
     * Instruction-miss stall cycles charged per executed OS
     * instruction.  The paper's instruction side is not simulated in
     * detail (its companion work covers it); this coarse model keeps
     * the Exec / I-Miss share of OS time realistic so the relative
     * gains of the data-side optimizations match Figure 3.
     */
    double osImissCpi = 0.35;

    /** Same, for user instructions (applications miss far less). */
    double userImissCpi = 0.04;

    /**
     * Simulate the 16-KB primary instruction cache in detail instead
     * of the statistical per-instruction I-miss charge.  Off by
     * default: the statistical model is what the workload profiles
     * were calibrated with; the detailed model is exercised by the
     * I-cache ablation.
     */
    bool modelICache = false;

    /**
     * Cycles a processor spins locally between re-checks of a held
     * lock or an incomplete barrier (test-and-test-and-set loop).
     */
    Cycles spinQuantum = 25;

    /** Machine word size in bytes (the FX/8 is a 32-bit machine). */
    std::uint32_t wordSize = 4;

    /**
     * Attach the coherence invariant checker (src/check) to the
     * memory system and panic on any violation.  On by default: the
     * shadow state is cheap relative to simulation and turns a subtle
     * protocol bug into an immediate, attributed failure.
     */
    bool checkCoherence = true;

    /**
     * Observability opt-ins (src/obs).  All off by default — the
     * memory system then pays only a flag test per event.  The runner
     * merges these with the process-wide default installed by
     * setGlobalObsOptions() (used by `oscache-bench --metrics`).
     */
    ObsOptions obs;
};

} // namespace oscache

#endif // OSCACHE_SIM_OPTIONS_HH
