/**
 * @file
 * The whole-machine trace-driven simulation engine.
 *
 * System replays a multiprocessor trace against a MemorySystem,
 * advancing the processor with the smallest local time one record at
 * a time (min-time scheduling).  Synchronization records are retimed
 * rather than replayed verbatim: a LockAcquire spins until the holder
 * (in simulated time) releases, and a BarrierArrive blocks until all
 * participants have arrived — so the mutual-exclusion functionality
 * of the original trace is maintained under the new memory-system
 * timings, as required by Section 2.2 of the paper.
 *
 * The engine pulls records through TraceSource cursors, so it runs
 * identically from a materialized Trace, an on-disk file read
 * incrementally, or a generator producing records on demand.  A
 * side effect of min-time scheduling is that the consumers stay
 * within about one synchronization interval of each other, which is
 * what keeps streamed sources' buffering bounded.
 */

#ifndef OSCACHE_SIM_SYSTEM_HH
#define OSCACHE_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binio.hh"
#include "common/types.hh"
#include "mem/memsys.hh"
#include "sim/blockop_executor.hh"
#include "sim/options.hh"
#include "sim/sampling.hh"
#include "sim/stats.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace oscache
{

/**
 * Replays a trace on a memory system and collects statistics.
 */
class System
{
  public:
    /**
     * @param source   The trace source to replay (must outlive the
     *                 System; one cursor per cpu is opened here).
     * @param mem      The memory system (update pages are taken from
     *                 the source automatically).
     * @param executor Scheme-specific block-operation executor; it
     *                 must record into the same @p stats object.
     * @param options  Processor-model knobs.
     * @param stats    Statistics sink shared with the executor.
     */
    System(TraceSource &source, MemorySystem &mem,
           BlockOpExecutor &executor, const SimOptions &options,
           SimStats &stats);

    /** Convenience: replay a materialized trace. */
    System(const Trace &trace, MemorySystem &mem, BlockOpExecutor &executor,
           const SimOptions &options, SimStats &stats);

    /** Run the trace to completion. */
    void run();

    /**
     * Replay one scheduling step (one record or spin quantum on the
     * processor with the smallest local time); false once every
     * processor is done.  run() is tick() in a loop — sampled replay
     * drives tick() directly so it can checkpoint between steps.
     */
    bool tick();

    /**
     * Install a sampling controller: before each record the engine
     * asks it for the processor's phase and routes statistics to
     * @p warm_sink unless the phase is Measure.  Both must outlive
     * the System; pass nullptr to return to full measurement.
     */
    void setSampling(SampleController *controller, SimStats *warm_sink);

    /** True when no processor is mid-spin (clean checkpoint state). */
    bool quiescent() const;

    /** Sync repairs performed under sampling (see sim/sampling.hh). */
    std::uint64_t syncBreaks() const { return syncBreakCount; }

    /**
     * Serialize the replay state that is not cursor position: per-cpu
     * times and run states, lock/barrier tables, and the sync-repair
     * counter.  Statistics sinks and cursors are the caller's to
     * save; pair with loadState() on an identically shaped System.
     */
    void saveState(binio::BinaryWriter &w) const;

    /** Inverse of saveState(); false with @p error on malformed input. */
    bool loadState(binio::BinaryReader &r, std::string *error);

    /** Statistics collected so far (valid after run()). */
    const SimStats &stats() const { return simStats; }

  private:
    enum class CpuRunState : std::uint8_t
    {
        Running,
        SpinLock,
        SpinBarrier,
        Done,
    };

    struct CpuState
    {
        Cycles time = 0;
        CpuRunState state = CpuRunState::Running;
        /** Lock or barrier address being waited on. */
        Addr waitAddr = invalidAddr;
        /** Barrier episode this processor is waiting to complete. */
        std::uint64_t waitEpisode = 0;
        /** Fractional I-miss cycle accumulator. */
        double imissCarry = 0.0;
        /** Local time when the current spin began (spin-break clock). */
        Cycles spinStart = 0;
    };

    struct LockState
    {
        bool held = false;
        CpuId holder = 0;
    };

    struct BarrierState
    {
        std::uint32_t arrived = 0;
        std::uint64_t episode = 0;
        Cycles releaseAt = 0;
    };

    void attach();

    /** Process one record (or one spin quantum) on @p cpu. */
    void step(CpuId cpu);

    /**
     * The batched replay loop behind run() when no sampler is
     * attached: pulls whole cursor spans via peekRun() and keeps the
     * scheduled processor consuming simple records until another
     * processor's local time takes over, with the I-cache model
     * branch hoisted out of the inner loop as a template parameter.
     * Produces byte-identical results to tick() in a loop.
     */
    template <bool ModelICache> void runBatched();

    /**
     * @name Non-consuming record appliers
     * The handle* wrappers below pair these with a cursor advance;
     * the batched loop applies them straight off a peeked span and
     * consumes the span in one advanceRun() call.
     * @{
     */
    template <bool ModelICache>
    void applyExec(CpuId cpu, const TraceRecord &rec);
    void applyRead(CpuId cpu, const TraceRecord &rec);
    void applyWrite(CpuId cpu, const TraceRecord &rec);
    void applyPrefetch(CpuId cpu, const TraceRecord &rec);
    /** @} */

    void handleExec(CpuId cpu, const TraceRecord &rec);
    void handleData(CpuId cpu, const TraceRecord &rec);
    void handleBlockOp(CpuId cpu, const TraceRecord &rec);
    void handleLockAcquire(CpuId cpu, const TraceRecord &rec);
    void handleLockRelease(CpuId cpu, const TraceRecord &rec);
    void handleBarrier(CpuId cpu, const TraceRecord &rec);

    /** Charge I-miss stall for @p instrs instructions on @p cpu. */
    Cycles imissCycles(CpuId cpu, std::uint64_t instrs, bool os);

    /** Perform the read-modify-write of a synchronization variable. */
    void syncRmw(CpuId cpu, Addr addr, DataCategory cat, bool os);

    /** Break a sampled spin that outlived the controller's budget. */
    bool maybeBreakSpin(CpuId cpu);

    /** Backing source of the convenience Trace constructor. */
    std::unique_ptr<MaterializedTraceSource> ownedSource;
    TraceSource &source;
    MemorySystem &mem;
    BlockOpExecutor &executor;
    SimOptions opts;
    SimStats &simStats;

    /**
     * Active statistics sink: &simStats normally; retargeted per
     * record between &simStats and the warm sink under sampling.
     */
    SimStats *cur;
    SampleController *sampler = nullptr;
    SimStats *warmSink = nullptr;
    std::uint64_t syncBreakCount = 0;

    std::vector<std::unique_ptr<RecordCursor>> cursors;
    std::vector<CpuState> cpus;
    std::unordered_map<Addr, LockState> locks;
    std::unordered_map<Addr, BarrierState> barriers;

    /** Safety valve against malformed (deadlocking) traces. */
    std::uint64_t consecutiveSpins = 0;
    static constexpr std::uint64_t spinLimit = 200'000'000;
};

} // namespace oscache

#endif // OSCACHE_SIM_SYSTEM_HH
