/**
 * @file
 * Simulation statistics.
 *
 * The buckets mirror the paper's reporting exactly:
 *
 *  - Execution-time decomposition (Table 1, Figure 3): user / idle /
 *    OS time; the OS side split into instruction execution,
 *    instruction-miss stall, data-read-miss stall, write-buffer
 *    stall, and prefetch (partially hidden) stall.
 *  - Block-operation overheads (Figure 1): read stall, write stall,
 *    displacement stall, instruction execution.
 *  - Primary-cache read-miss taxonomy (Tables 2 and 5, Figures 2,
 *    4, 5): block-operation misses, coherence misses by kernel
 *    data-structure category, and other (mostly conflict) misses.
 *  - Displacement/reuse accounting (Table 3, Section 4.1.3), split
 *    into inside (block-op body) and outside components.
 *  - Per-basic-block miss counts for the hot-spot analysis
 *    (Section 6).
 */

#ifndef OSCACHE_SIM_STATS_HH
#define OSCACHE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "mem/access.hh"
#include "trace/record.hh"

namespace oscache
{

/** Number of DataCategory values, for per-category arrays. */
inline constexpr std::size_t numDataCategories =
    static_cast<std::size_t>(DataCategory::NumCategories);
static_assert(numDataCategories == 11,
              "DataCategory changed: update the binary trace format's "
              "category bound in trace/io.cc and the paper-table "
              "renderers before bumping this");

/**
 * All counters collected by one simulation run.
 */
struct SimStats
{
    /** @name Cycle buckets @{ */
    Cycles userExec = 0;
    Cycles osExec = 0;
    Cycles idle = 0;
    /** Cycles spinning on locks and barriers (OS time). */
    Cycles osSpin = 0;
    Cycles userReadStall = 0;
    Cycles osReadStall = 0;
    Cycles userWriteStall = 0;
    Cycles osWriteStall = 0;
    /** Read stall partially hidden by a prefetch ("Pref"). */
    Cycles userPrefStall = 0;
    Cycles osPrefStall = 0;
    Cycles userImiss = 0;
    Cycles osImiss = 0;
    /** @} */

    /** @name Block-operation overheads (subset attribution) @{ */
    Cycles blockReadStall = 0;
    Cycles blockWriteStall = 0;
    Cycles blockDisplStall = 0;
    Cycles blockInstrExec = 0;
    /** @} */

    /** @name Reference counts @{ */
    std::uint64_t userReads = 0;
    std::uint64_t osReads = 0;
    std::uint64_t userWrites = 0;
    std::uint64_t osWrites = 0;
    std::uint64_t userInstrs = 0;
    std::uint64_t osInstrs = 0;
    /** @} */

    /** @name Primary-cache read misses @{ */
    std::uint64_t userMisses = 0;
    /** OS misses during block operations (Table 2 "Block Op."). */
    std::uint64_t osMissBlock = 0;
    /** Block misses by operation size: <1KB, 1-4KB, 4KB (diagnostic). */
    std::array<std::uint64_t, 3> osMissBlockBySize{};
    /** OS coherence misses by data category (Table 5). */
    std::array<std::uint64_t, numDataCategories> osMissCoherence{};
    /** OS other (conflict/cold/displacement/reuse) misses. */
    std::uint64_t osMissOther = 0;
    /** Subset of OS misses whose latency a prefetch partly hid. */
    std::uint64_t osMissPartiallyHidden = 0;
    /** @} */

    /** @name Displacement / reuse accounting (all CPUs) @{ */
    std::uint64_t displacementInside = 0;
    std::uint64_t displacementOutside = 0;
    std::uint64_t reuseInside = 0;
    std::uint64_t reuseOutside = 0;
    /** @} */

    /** OS "other" misses per issuing basic block (hot-spot input). */
    std::unordered_map<BasicBlockId, std::uint64_t> osOtherMissByBb;
    /** User misses per issuing basic block (diagnostic). */
    std::unordered_map<BasicBlockId, std::uint64_t> userMissByBb;

    /** @name Recording helpers @{ */

    /** Record a completed read access. */
    void
    recordRead(bool os, bool block_body, DataCategory cat, BasicBlockId bb,
               const AccessResult &res)
    {
        if (os)
            ++osReads;
        else
            ++userReads;

        const Cycles stall = res.stall;
        if (res.partiallyHidden) {
            (os ? osPrefStall : userPrefStall) += stall;
        } else {
            (os ? osReadStall : userReadStall) += stall;
        }
        if (block_body && !res.partiallyHidden)
            blockReadStall += stall;

        if (!res.l1Miss)
            return;

        if (!os) {
            ++userMisses;
            if (bb != invalidBasicBlock)
                ++userMissByBb[bb];
        } else if (block_body) {
            ++osMissBlock;
        } else if (res.cause == MissCause::Coherence) {
            ++osMissCoherence[static_cast<std::size_t>(cat)];
        } else {
            ++osMissOther;
            if (bb != invalidBasicBlock)
                ++osOtherMissByBb[bb];
        }

        if (os && res.partiallyHidden)
            ++osMissPartiallyHidden;

        if (res.cause == MissCause::Displacement) {
            (block_body ? displacementInside : displacementOutside) += 1;
            if (!block_body)
                blockDisplStall += stall;
        } else if (res.cause == MissCause::Reuse) {
            (block_body ? reuseInside : reuseOutside) += 1;
        }
    }

    /** Record a completed write access. */
    void
    recordWrite(bool os, bool block_body, const AccessResult &res)
    {
        if (os)
            ++osWrites;
        else
            ++userWrites;
        (os ? osWriteStall : userWriteStall) += res.stall;
        if (block_body)
            blockWriteStall += res.stall;
    }

    /** Record instruction execution plus its I-miss stall. */
    void
    recordExec(bool os, bool block_body, std::uint64_t instrs,
               Cycles exec_cycles, Cycles imiss_cycles)
    {
        if (os) {
            osInstrs += instrs;
            osExec += exec_cycles;
            osImiss += imiss_cycles;
        } else {
            userInstrs += instrs;
            userExec += exec_cycles;
            userImiss += imiss_cycles;
        }
        if (block_body)
            blockInstrExec += exec_cycles + imiss_cycles;
    }

    /** @} */

    /** @name Derived quantities @{ */

    /** Total OS primary-cache read misses. */
    std::uint64_t
    osMissTotal() const
    {
        std::uint64_t coh = 0;
        for (auto c : osMissCoherence)
            coh += c;
        return osMissBlock + coh + osMissOther;
    }

    /** Total OS coherence misses. */
    std::uint64_t
    osMissCoherenceTotal() const
    {
        std::uint64_t coh = 0;
        for (auto c : osMissCoherence)
            coh += c;
        return coh;
    }

    /** Total primary-cache read misses, user plus OS. */
    std::uint64_t totalMisses() const { return userMisses + osMissTotal(); }

    /** Total data reads. */
    std::uint64_t totalReads() const { return userReads + osReads; }

    /** OS time: execution + spin + all OS stall components. */
    Cycles
    osTime() const
    {
        return osExec + osSpin + osImiss + osReadStall + osWriteStall +
               osPrefStall;
    }

    /** User time: execution + user stall components. */
    Cycles
    userTime() const
    {
        return userExec + userImiss + userReadStall + userWriteStall +
               userPrefStall;
    }

    /** Total machine time across the run (one CPU's worth). */
    Cycles totalTime() const { return osTime() + userTime() + idle; }

    /** Stall time due to OS accesses to the data memory hierarchy. */
    Cycles
    osDataStall() const
    {
        return osReadStall + osWriteStall + osPrefStall;
    }

    /** @} */

    /**
     * Member-wise equality; the streaming tests pin that the
     * streamed and materialized replay paths agree bit for bit.
     */
    bool operator==(const SimStats &) const = default;
};

} // namespace oscache

#endif // OSCACHE_SIM_STATS_HH
