/**
 * @file
 * Coherence-event observation interface.
 *
 * MemorySystem can be fitted with a MemEventObserver that is notified
 * of every secondary-cache state transition, every primary-cache fill
 * and invalidation, and the completion of every processor-side
 * operation.  The production observer is the coherence invariant
 * checker in src/check, which shadows the protocol state and asserts
 * SWMR, inclusion, and edge legality; keeping the interface abstract
 * here avoids a dependency cycle (mem must not link against check).
 *
 * All hooks default to no-ops so the observer costs a null-pointer
 * test per event when disabled.
 */

#ifndef OSCACHE_MEM_OBSERVER_HH
#define OSCACHE_MEM_OBSERVER_HH

#include "common/types.hh"
#include "mem/cache.hh"

namespace oscache
{

class MemorySystem;

/** Processor-side operation classes reported to the observer. */
enum class MemOpKind : std::uint8_t
{
    Read,
    Write,
    Prefetch,
    BypassWrite,
    CodeFill,
    InstructionFetch,
    Dma,
};

/**
 * Passive observer of memory-system coherence events.
 */
struct MemEventObserver
{
    virtual ~MemEventObserver() = default;

    /**
     * A secondary-cache line of @p cpu moved from @p from to @p to.
     * Fired for fills (from Invalid), state changes, invalidations
     * (to Invalid), and replacements (the victim's to-Invalid edge).
     */
    virtual void
    onL2Transition(CpuId cpu, Addr l2_line, LineState from, LineState to)
    {
        (void)cpu;
        (void)l2_line;
        (void)from;
        (void)to;
    }

    /** A primary data-cache line of @p cpu was installed. */
    virtual void
    onL1Fill(CpuId cpu, Addr l1_line)
    {
        (void)cpu;
        (void)l1_line;
    }

    /** A primary data-cache line of @p cpu was dropped. */
    virtual void
    onL1Drop(CpuId cpu, Addr l1_line)
    {
        (void)cpu;
        (void)l1_line;
    }

    /**
     * A processor-side operation finished.  Deferred whole-system
     * invariants (SWMR, inclusion) are checked here rather than per
     * transition: mid-operation the protocol legitimately passes
     * through states where an L1 line's covering L2 line is already
     * gone (snoop invalidation runs L2-first).
     */
    virtual void
    onOperationEnd(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                   Addr addr)
    {
        (void)mem;
        (void)op;
        (void)cpu;
        (void)addr;
    }
};

} // namespace oscache

#endif // OSCACHE_MEM_OBSERVER_HH
