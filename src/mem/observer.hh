/**
 * @file
 * Coherence-event observation interface.
 *
 * MemorySystem can be fitted with a MemEventObserver that is notified
 * of every secondary-cache state transition, every primary-cache fill
 * and invalidation, and the completion of every processor-side
 * operation.  The production observer is the coherence invariant
 * checker in src/check, which shadows the protocol state and asserts
 * SWMR, inclusion, and edge legality; keeping the interface abstract
 * here avoids a dependency cycle (mem must not link against check).
 *
 * All hooks default to no-ops so the observer costs a null-pointer
 * test per event when disabled.
 */

#ifndef OSCACHE_MEM_OBSERVER_HH
#define OSCACHE_MEM_OBSERVER_HH

#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "mem/access.hh"
#include "mem/cache.hh"

namespace oscache
{

class MemorySystem;
struct BlockOp;

/** Processor-side operation classes reported to the observer. */
enum class MemOpKind : std::uint8_t
{
    Read,
    Write,
    Prefetch,
    BypassWrite,
    CodeFill,
    InstructionFetch,
    Dma,
};

/**
 * Everything known about one completed processor-side data operation,
 * reported through MemEventObserver::onAccess.  Unlike the coherence
 * hooks below, access events fire on *every* completion — hits, merged
 * in-flight fills, and dropped prefetches included — so a profiler can
 * attribute misses and latency per issuing site.
 */
struct MemAccessEvent
{
    MemOpKind kind = MemOpKind::Read;
    CpuId cpu = 0;
    Addr addr = invalidAddr;
    /** Cycle the operation was issued (before any stalls). */
    Cycles issued = 0;
    /** The issuing context (os/blockOpBody/category/basic block). */
    AccessContext ctx;
    /** The operation's result (defaulted for void operations). */
    AccessResult result;
    /** True when a prefetch was dropped (MSHRs or buffer busy). */
    bool dropped = false;
    /**
     * BypassWrite granularity: true for a full secondary-line bypass
     * (writeBypassLine), false for a single bypassed word.
     */
    bool wholeLine = false;
    /** BypassWrite only: the write snoop-invalidated other copies. */
    bool invalidated = false;
    /**
     * Read only: serviced by readViaPrefetchBuffer's own-cache or
     * buffer paths (which, unlike read(), leave the in-flight fill
     * registers untouched).  A buffer read that falls through to the
     * bus reports as an ordinary read.
     */
    bool viaBuffer = false;
};

/**
 * Passive observer of memory-system coherence events.
 */
struct MemEventObserver
{
    virtual ~MemEventObserver() = default;

    /**
     * Per-access reporting is gated: the memory system queries this
     * once at setObserver() time and builds MemAccessEvent records
     * only when the observer wants them, so the default (coherence
     * checking only) costs one flag test per access.
     */
    virtual bool wantsAccessEvents() const { return false; }

    /** A processor-side data operation completed (all outcomes). */
    virtual void
    onAccess(const MemAccessEvent &event)
    {
        (void)event;
    }

    /**
     * A whole block operation (copy/zero) executed on @p cpu from
     * @p start to @p end simulated cycles.  Reported by the simulation
     * engine around the scheme executor, so it brackets every per-word
     * access and bus transaction the operation caused.
     */
    virtual void
    onBlockOp(CpuId cpu, const BlockOp &op, Cycles start, Cycles end)
    {
        (void)cpu;
        (void)op;
        (void)start;
        (void)end;
    }

    /**
     * A secondary-cache line of @p cpu moved from @p from to @p to.
     * Fired for fills (from Invalid), state changes, invalidations
     * (to Invalid), and replacements (the victim's to-Invalid edge).
     */
    virtual void
    onL2Transition(CpuId cpu, Addr l2_line, LineState from, LineState to)
    {
        (void)cpu;
        (void)l2_line;
        (void)from;
        (void)to;
    }

    /** A primary data-cache line of @p cpu was installed. */
    virtual void
    onL1Fill(CpuId cpu, Addr l1_line)
    {
        (void)cpu;
        (void)l1_line;
    }

    /** A primary data-cache line of @p cpu was dropped. */
    virtual void
    onL1Drop(CpuId cpu, Addr l1_line)
    {
        (void)cpu;
        (void)l1_line;
    }

    /**
     * A processor-side operation is about to execute.  Fired before
     * the operation touches any cache state, so an observer that
     * classifies the L2 transitions between begin and end (the
     * conformance extractor in src/verif) knows which processor
     * initiated them, what kind of operation is in flight, and what
     * the initiator's pre-operation line state was.
     */
    virtual void
    onOperationBegin(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                     Addr addr)
    {
        (void)mem;
        (void)op;
        (void)cpu;
        (void)addr;
    }

    /**
     * A DMA block operation (Blk_Dma) is about to execute on @p cpu.
     * Unlike onOperationBegin this carries the whole descriptor, so a
     * transition classifier can tell source-range snoops from
     * destination-range in-place updates.
     */
    virtual void
    onDmaBegin(CpuId cpu, const BlockOp &op)
    {
        (void)cpu;
        (void)op;
    }

    /**
     * A processor-side operation finished.  Deferred whole-system
     * invariants (SWMR, inclusion) are checked here rather than per
     * transition: mid-operation the protocol legitimately passes
     * through states where an L1 line's covering L2 line is already
     * gone (snoop invalidation runs L2-first).
     */
    virtual void
    onOperationEnd(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                   Addr addr)
    {
        (void)mem;
        (void)op;
        (void)cpu;
        (void)addr;
    }

    /**
     * @name Operation-input taps (gated on wantsAccessEvents())
     *
     * These report the *inputs* of operations that mutate cache state
     * without producing a per-access result: instruction-footprint
     * fills, DMA block operations, and Blk_ByPref buffer fills.  A
     * differential oracle needs them to keep an independent model in
     * step; they deliberately carry no engine outcome, so the
     * receiving model must derive the consequences itself.
     * @{
     */

    /** @p cpu installed the code lines of [@p addr, @p addr+bytes). */
    virtual void
    onCodeFill(CpuId cpu, Addr addr, std::uint32_t bytes)
    {
        (void)cpu;
        (void)addr;
        (void)bytes;
    }

    /** @p cpu executed @p op on the DMA-like engine (Blk_Dma). */
    virtual void
    onDma(CpuId cpu, const BlockOp &op)
    {
        (void)cpu;
        (void)op;
    }

    /**
     * @p cpu appended the primary line of @p addr to its Blk_ByPref
     * source prefetch buffer (fired only when an entry was actually
     * added — deduplicated and dropped prefetches are silent).
     */
    virtual void
    onBufferPrefetchFill(CpuId cpu, Addr addr)
    {
        (void)cpu;
        (void)addr;
    }

    /** @} */
};

/**
 * Flat, devirtualized observer fan-out: a fixed array of taps the
 * memory system iterates inline.  Unlike MemEventObserverMux (one
 * virtual hop into the mux, then one per child), the fan-out's
 * forwarders are non-virtual and inlined into the notify helpers, so
 * an event costs exactly one `active()` branch when nothing is
 * attached and one virtual call per tap otherwise.  The
 * wantsAccessEvents() answer is cached at attach time, collapsing the
 * per-access gate to a single flag test.
 */
class ObserverFanout
{
  public:
    /** Check / obs / dft taps, plus one spare. */
    static constexpr unsigned maxTaps = 4;

    void
    clear()
    {
        count = 0;
        wantsAccess = false;
    }

    /** Attach @p observer (ignored when null). */
    void
    add(MemEventObserver *observer)
    {
        if (observer == nullptr)
            return;
        if (count >= maxTaps)
            panic("ObserverFanout: more than ", maxTaps, " taps");
        taps[count++] = observer;
        wantsAccess = wantsAccess || observer->wantsAccessEvents();
    }

    bool active() const { return count != 0; }
    bool empty() const { return count == 0; }
    unsigned size() const { return count; }

    /** Cached any-tap wantsAccessEvents() (hot-path gate). */
    bool wantsAccessEvents() const { return wantsAccess; }

    /** The sole tap when exactly one is attached, else nullptr. */
    MemEventObserver *
    single() const
    {
        return count == 1 ? taps[0] : nullptr;
    }

    void
    onAccess(const MemAccessEvent &event) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onAccess(event);
    }

    void
    onBlockOp(CpuId cpu, const BlockOp &op, Cycles start, Cycles end) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onBlockOp(cpu, op, start, end);
    }

    void
    onL2Transition(CpuId cpu, Addr l2_line, LineState from,
                   LineState to) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onL2Transition(cpu, l2_line, from, to);
    }

    void
    onL1Fill(CpuId cpu, Addr l1_line) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onL1Fill(cpu, l1_line);
    }

    void
    onL1Drop(CpuId cpu, Addr l1_line) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onL1Drop(cpu, l1_line);
    }

    void
    onOperationBegin(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                     Addr addr) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onOperationBegin(mem, op, cpu, addr);
    }

    void
    onDmaBegin(CpuId cpu, const BlockOp &op) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onDmaBegin(cpu, op);
    }

    void
    onOperationEnd(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                   Addr addr) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onOperationEnd(mem, op, cpu, addr);
    }

    void
    onCodeFill(CpuId cpu, Addr addr, std::uint32_t bytes) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onCodeFill(cpu, addr, bytes);
    }

    void
    onDma(CpuId cpu, const BlockOp &op) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onDma(cpu, op);
    }

    void
    onBufferPrefetchFill(CpuId cpu, Addr addr) const
    {
        for (unsigned i = 0; i < count; ++i)
            taps[i]->onBufferPrefetchFill(cpu, addr);
    }

  private:
    MemEventObserver *taps[maxTaps] = {};
    unsigned count = 0;
    bool wantsAccess = false;
};

/**
 * Fan-out observer: forwards every event to each attached observer in
 * attachment order.  Used when a run wants both the coherence checker
 * and the observability hub on the same memory system.
 *
 * Retained for consumers that need a MemEventObserver-shaped bundle;
 * the memory system itself fans out through the flat ObserverFanout
 * above (setObservers()), which skips the extra virtual hop.
 */
class MemEventObserverMux : public MemEventObserver
{
  public:
    /** Attach @p observer (ignored when null). */
    void
    add(MemEventObserver *observer)
    {
        if (observer != nullptr)
            list.push_back(observer);
    }

    bool empty() const { return list.empty(); }

    bool
    wantsAccessEvents() const override
    {
        for (MemEventObserver *o : list)
            if (o->wantsAccessEvents())
                return true;
        return false;
    }

    void
    onAccess(const MemAccessEvent &event) override
    {
        for (MemEventObserver *o : list)
            o->onAccess(event);
    }

    void
    onBlockOp(CpuId cpu, const BlockOp &op, Cycles start,
              Cycles end) override
    {
        for (MemEventObserver *o : list)
            o->onBlockOp(cpu, op, start, end);
    }

    void
    onL2Transition(CpuId cpu, Addr l2_line, LineState from,
                   LineState to) override
    {
        for (MemEventObserver *o : list)
            o->onL2Transition(cpu, l2_line, from, to);
    }

    void
    onL1Fill(CpuId cpu, Addr l1_line) override
    {
        for (MemEventObserver *o : list)
            o->onL1Fill(cpu, l1_line);
    }

    void
    onL1Drop(CpuId cpu, Addr l1_line) override
    {
        for (MemEventObserver *o : list)
            o->onL1Drop(cpu, l1_line);
    }

    void
    onOperationBegin(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                     Addr addr) override
    {
        for (MemEventObserver *o : list)
            o->onOperationBegin(mem, op, cpu, addr);
    }

    void
    onDmaBegin(CpuId cpu, const BlockOp &op) override
    {
        for (MemEventObserver *o : list)
            o->onDmaBegin(cpu, op);
    }

    void
    onOperationEnd(const MemorySystem &mem, MemOpKind op, CpuId cpu,
                   Addr addr) override
    {
        for (MemEventObserver *o : list)
            o->onOperationEnd(mem, op, cpu, addr);
    }

    void
    onCodeFill(CpuId cpu, Addr addr, std::uint32_t bytes) override
    {
        for (MemEventObserver *o : list)
            o->onCodeFill(cpu, addr, bytes);
    }

    void
    onDma(CpuId cpu, const BlockOp &op) override
    {
        for (MemEventObserver *o : list)
            o->onDma(cpu, op);
    }

    void
    onBufferPrefetchFill(CpuId cpu, Addr addr) override
    {
        for (MemEventObserver *o : list)
            o->onBufferPrefetchFill(cpu, addr);
    }

  private:
    std::vector<MemEventObserver *> list;
};

} // namespace oscache

#endif // OSCACHE_MEM_OBSERVER_HH
