/**
 * @file
 * Hardware configuration of the simulated machine.
 *
 * Defaults reproduce the paper's Base architecture (Section 2.4):
 * four 200-MHz processors, each with a 32-KB direct-mapped
 * write-through primary data cache with 16-byte lines and a 256-KB
 * direct-mapped write-back lockup-free secondary cache with 32-byte
 * lines; a 4-deep word-wide write buffer between the caches and an
 * 8-deep 32-byte write buffer between the secondary cache and the
 * bus; reads bypass writes; Illinois coherence under release
 * consistency; an 8-byte 40-MHz split-transaction bus where a
 * secondary line transfer occupies 20 processor cycles; and
 * uncontended word-read latencies of 1 / 12 / 51 cycles from the
 * primary cache / secondary cache / memory.
 */

#ifndef OSCACHE_MEM_CONFIG_HH
#define OSCACHE_MEM_CONFIG_HH

#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace oscache
{

/**
 * Write-invalidate coherence protocol family.  The paper's Base uses
 * Illinois (MESI, with a clean-exclusive state so private data never
 * pays an upgrade transaction); the MSI mode drops the E state, as
 * in simpler snooping protocols, for comparison.
 */
enum class CoherenceProtocol : std::uint8_t
{
    Illinois,
    Msi,
};

/** Static description of the simulated memory system. */
struct MachineConfig
{
    /** Number of processors on the bus. */
    unsigned numCpus = 4;

    /** @name Primary (L1) data cache @{ */
    std::uint32_t l1Size = 32 * 1024;
    std::uint32_t l1LineSize = 16;
    /** Associativity (1 = the paper's direct-mapped caches). */
    std::uint32_t l1Ways = 1;
    /** @} */

    /** @name Primary instruction cache (optional detailed model) @{ */
    std::uint32_t iCacheSize = 16 * 1024;
    std::uint32_t iCacheLineSize = 16;
    /** @} */

    /** @name Secondary (L2) cache @{ */
    std::uint32_t l2Size = 256 * 1024;
    std::uint32_t l2LineSize = 32;
    std::uint32_t l2Ways = 1;
    /** @} */

    /** Coherence protocol (invalidation side; update pages override). */
    CoherenceProtocol protocol = CoherenceProtocol::Illinois;

    /** @name Latencies, in processor cycles @{ */
    /** Word read that hits the primary cache. */
    Cycles l1HitLatency = 1;
    /** Word read that hits the secondary cache (total from issue). */
    Cycles l2HitLatency = 12;
    /** Word read serviced by memory (total from issue, uncontended). */
    Cycles memLatency = 51;
    /**
     * Cost of draining one word from the L1 write buffer into L2.
     * The L1-to-L2 path is fast; the paper attributes the large
     * majority of write stall to the buffer between the secondary
     * cache and the bus.
     */
    Cycles l2WriteLatency = 2;
    /** @} */

    /** @name Bus @{ */
    /** Processor cycles per bus cycle (200 MHz CPU / 40 MHz bus). */
    Cycles busCycle = 5;
    /** Bus occupancy of one secondary-line transfer, CPU cycles. */
    Cycles lineTransferOccupancy = 20;
    /** Bus occupancy of an invalidation-only transaction. */
    Cycles invalOccupancy = 5;
    /** Bus occupancy of a word update broadcast (Firefly). */
    Cycles updateOccupancy = 10;
    /** Bus occupancy of a single bypassed word write. */
    Cycles wordWriteOccupancy = 7;
    /** @} */

    /** @name Write buffers @{ */
    /** Depth of the word-wide buffer between L1 and L2. */
    unsigned l1WriteBufferDepth = 4;
    /** Depth of the line-wide buffer between L2 and the bus. */
    unsigned l2WriteBufferDepth = 8;
    /** @} */

    /** @name Lockup-free secondary cache @{ */
    /** Outstanding-miss registers available for prefetches. */
    unsigned mshrCount = 8;
    /** @} */

    /** @name DMA-like block-operation engine (Blk_Dma, Section 4.2) @{ */
    /** Startup cost before the first transfer, CPU cycles. */
    Cycles dmaStartup = 19;
    /** CPU cycles to move 8 bytes across the bus (2 bus cycles). */
    Cycles dmaPer8Bytes = 10;
    /** Extra cycles when a snooped cache must supply a dirty line. */
    Cycles dmaDirtySupplyPenalty = 10;
    /** @} */

    /** @name Prefetch hardware @{ */
    /** Lines in the Blk_ByPref source prefetch buffer. */
    unsigned blockPrefetchBufferLines = 8;
    /** @} */

    /**
     * @name Two-level NUMA interconnect @{
     *
     * With numSockets > 1 the processors split into equal groups,
     * each snooping on a private per-socket bus; the sockets join
     * through a single inter-socket link guarded by a home-node
     * directory filter.  Memory interleaves across sockets at
     * homeGranule-byte granularity, and a read whose home is a
     * remote socket pays remoteMemPenalty extra cycles.  The default
     * numSockets == 1 is the paper's flat bus, bit-for-bit.
     */
    /** Sockets; 1 = the paper's single snooping bus. */
    unsigned numSockets = 1;
    /** Extra cycles for a line serviced by a remote home memory. */
    Cycles remoteMemPenalty = 40;
    /** Link occupancy of a full line transfer across sockets. */
    Cycles linkTransferOccupancy = 24;
    /** Link occupancy of an address-only coherence message. */
    Cycles linkMsgOccupancy = 6;
    /** Bytes per home-interleave granule (page-sized by default). */
    std::uint32_t homeGranule = 4096;
    /** @} */

    /** Derived: processors per socket. */
    unsigned cpusPerSocket() const { return numCpus / numSockets; }
    /** Derived: socket of @p cpu. */
    unsigned
    socketOf(CpuId cpu) const
    {
        return unsigned(cpu) / cpusPerSocket();
    }
    /** Derived: home socket of @p addr (granule interleaving). */
    unsigned
    homeSocketOf(Addr addr) const
    {
        return unsigned((addr / homeGranule) % numSockets);
    }
    /** Derived: true when the two-level interconnect is in play. */
    bool numaActive() const { return numSockets > 1; }

    /** Derived: number of lines in L1. */
    std::uint32_t l1Sets() const { return l1Size / l1LineSize; }
    /** Derived: number of lines in L2. */
    std::uint32_t l2Sets() const { return l2Size / l2LineSize; }
    /** Derived: L1 lines per L2 line (inclusion granularity). */
    std::uint32_t
    l1LinesPerL2Line() const
    {
        return l2LineSize / l1LineSize;
    }
    /** Derived: bus/memory portion of a memory read (after L2 probe). */
    Cycles busMemLatency() const { return memLatency - l2HitLatency; }

    /** Validate internal consistency; panics on a malformed config. */
    void
    check() const
    {
        if (!isPowerOfTwo(l1Size) || !isPowerOfTwo(l1LineSize) ||
            !isPowerOfTwo(l2Size) || !isPowerOfTwo(l2LineSize) ||
            !isPowerOfTwo(iCacheSize) || !isPowerOfTwo(iCacheLineSize))
            panic("MachineConfig: sizes must be powers of two");
        if (l1LineSize > l2LineSize)
            panic("MachineConfig: L1 line larger than L2 line");
        if (l1Size > l2Size)
            panic("MachineConfig: L1 larger than L2 breaks inclusion");
        if (memLatency <= l2HitLatency)
            panic("MachineConfig: memory latency must exceed L2 latency");
        if (numCpus == 0)
            panic("MachineConfig: need at least one cpu");
        if (l1Ways == 0 || l2Ways == 0 || !isPowerOfTwo(l1Ways) ||
            !isPowerOfTwo(l2Ways))
            panic("MachineConfig: associativity must be a power of two");
        if (l1Ways > l1Sets() || l2Ways > l2Sets())
            panic("MachineConfig: more ways than lines");
        if (numSockets == 0)
            panic("MachineConfig: need at least one socket");
        if (numCpus % numSockets != 0)
            panic("MachineConfig: cpus must divide evenly into "
                  "sockets");
        if (!isPowerOfTwo(homeGranule) || homeGranule < l2LineSize)
            panic("MachineConfig: home granule must be a power of two "
                  "no smaller than an L2 line");
    }

    /** The paper's Base machine. */
    static MachineConfig base() { return MachineConfig{}; }

    /**
     * The Base machine scaled to @p sockets sockets of
     * @p cpus_per_socket processors each, under the default NUMA
     * timing parameters.
     */
    static MachineConfig
    numa(unsigned sockets, unsigned cpus_per_socket)
    {
        MachineConfig m;
        m.numSockets = sockets;
        m.numCpus = sockets * cpus_per_socket;
        return m;
    }
};

} // namespace oscache

#endif // OSCACHE_MEM_CONFIG_HH
