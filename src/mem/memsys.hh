/**
 * @file
 * The multiprocessor memory system.
 *
 * MemorySystem owns, per processor, the primary and secondary caches,
 * both write buffers, the in-flight (lockup-free) fill registers, and
 * the Blk_ByPref source prefetch buffer; and, shared, the
 * split-transaction bus and the Illinois/Firefly coherence state.
 * Coherence is snooping: every bus transaction probes the other
 * processors' secondary caches directly (there are only three).
 *
 * The class also carries the bookkeeping needed to reproduce the
 * paper's miss taxonomy, held in flat MarkTable instances (one probe
 * per classification, see mem/marks.hh):
 *
 *  - per-processor marks on lines invalidated by coherence (a
 *    subsequent primary-cache miss on such a line is a coherence
 *    miss),
 *  - per-processor marks on lines whose last eviction was caused by a
 *    block-operation fill (a subsequent miss is a block *displacement*
 *    miss, Section 4.1.3),
 *  - global marks on lines last touched by a cache-bypassing block
 *    operation (a subsequent miss is a *reuse* miss, Section 4.1.3).
 *
 * Writes to lines in pages registered with setUpdatePages() use the
 * Firefly update protocol instead of Illinois invalidations
 * (Section 5.2's selective update).
 */

#ifndef OSCACHE_MEM_MEMSYS_HH
#define OSCACHE_MEM_MEMSYS_HH

#include <deque>
#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/binio.hh"
#include "common/types.hh"
#include "mem/access.hh"
#include "mem/arena.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/marks.hh"
#include "mem/observer.hh"
#include "mem/write_buffer.hh"
#include "trace/blockop.hh"

namespace oscache
{

/**
 * The complete bus-based multiprocessor memory system.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &config);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** @name Processor-side operations @{ */

    /**
     * Blocking data read.  With ctx.allocate false the caches are
     * probed but a missing line is fetched without being installed
     * (the Blk_Bypass source path).
     */
    AccessResult read(CpuId cpu, Addr addr, Cycles now,
                      const AccessContext &ctx);

    /**
     * Buffered data write (write-through L1, write-allocate; release
     * consistency).  The processor stalls only on write-buffer
     * overflow.
     */
    AccessResult write(CpuId cpu, Addr addr, Cycles now,
                       const AccessContext &ctx);

    /**
     * Non-binding software prefetch of the line containing @p addr
     * into both cache levels.  Dropped when all outstanding-miss
     * registers are busy.
     */
    void prefetch(CpuId cpu, Addr addr, Cycles now,
                  const AccessContext &ctx);

    /**
     * Full secondary-line bypass write (Blk_Bypass destination path):
     * the line goes from the bypass register through the L2-to-bus
     * write buffer to memory without entering this processor's
     * caches; stale copies elsewhere are invalidated.
     */
    AccessResult writeBypassLine(CpuId cpu, Addr addr, Cycles now,
                                 const AccessContext &ctx);

    /**
     * Single bypassed word write (Blk_Bypass deposits its destination
     * words into the L2-to-bus write buffer one by one — the effect
     * the paper blames for the scheme's write-buffer overflow).
     * @param invalidate Snoop-invalidate the line (first word only).
     */
    AccessResult writeBypassWord(CpuId cpu, Addr addr, Cycles now,
                                 const AccessContext &ctx,
                                 bool invalidate);

    /**
     * Prefetch a primary-cache-sized line into the Blk_ByPref source
     * prefetch buffer (FIFO of blockPrefetchBufferLines entries).
     */
    void prefetchIntoBuffer(CpuId cpu, Addr addr, Cycles now);

    /**
     * Read through the Blk_ByPref prefetch buffer: own caches are
     * probed first (without allocation on miss), then the buffer,
     * then the bus.
     */
    AccessResult readViaPrefetchBuffer(CpuId cpu, Addr addr, Cycles now,
                                       const AccessContext &ctx);

    /**
     * Instruction-fetch pressure on the unified secondary cache:
     * install the code lines of a basic block, evicting data
     * victims.  Timing is handled by the statistical I-miss model.
     */
    void codeFill(CpuId cpu, Addr code_addr, std::uint32_t bytes);

    /**
     * Detailed instruction-fetch model: probe the 16-KB primary
     * instruction cache for every code line of the block, filling
     * misses from the unified L2 (or, beyond it, the bus) and
     * charging their latency.  Subsumes codeFill's capacity effect.
     *
     * @return The instruction-miss stall in cycles.
     */
    Cycles instructionFetch(CpuId cpu, Addr code_addr, std::uint32_t bytes,
                            Cycles now);

    /**
     * Release-consistency fence: returns the cycle by which both of
     * this processor's write buffers have drained.
     */
    Cycles fence(CpuId cpu, Cycles now);

    /**
     * Execute a whole block operation with the DMA-like engine
     * (Blk_Dma): the bus is held for the duration, caches are
     * bypassed but kept coherent by snooping (resident destination
     * lines are updated in place, dirty source lines are supplied by
     * their owners).
     *
     * @return The cycle at which the operation (and the stalled
     *         originating processor) completes.
     */
    Cycles dmaBlockOp(CpuId cpu, const BlockOp &op, Cycles now);

    /** @} */

    /** @name Configuration and inspection @{ */

    /** Register the set of page-aligned update-protocol pages. */
    void
    setUpdatePages(const std::unordered_set<Addr> *pages)
    {
        updatePages = pages;
    }

    const MachineConfig &config() const { return cfg; }
    Bus &bus() { return theBus; }
    const Bus &bus() const { return theBus; }

    /** @name Two-level interconnect inspection @{ */

    /** True iff the machine runs the two-level NUMA interconnect. */
    bool numaActive() const { return numa != nullptr; }

    /** Per-socket snooping bus @p s (NUMA mode only). */
    Bus &socketBus(unsigned s) { return numa->socketBus[s]; }
    const Bus &socketBus(unsigned s) const { return numa->socketBus[s]; }

    /** The inter-socket link (NUMA mode only). */
    Bus &linkBus() { return numa->link; }
    const Bus &linkBus() const { return numa->link; }

    /** Aggregate directory-filter and home-locality counters. */
    struct NumaCounters
    {
        /** Snoop broadcasts the home directory kept socket-local. */
        std::uint64_t snoopsFiltered = 0;
        /** Snoop broadcasts forwarded across the link. */
        std::uint64_t snoopsForwarded = 0;
        /** Line reads whose home memory was the local socket. */
        std::uint64_t localHomeReads = 0;
        /** Line reads that paid the remote-home penalty. */
        std::uint64_t remoteHomeReads = 0;
    };

    /** Current counter values (all zero on a flat machine). */
    NumaCounters
    numaCounters() const
    {
        return numa != nullptr ? numa->counters : NumaCounters{};
    }

    /** @} */

    /** True iff @p cpu's primary cache holds the line of @p addr. */
    bool l1Contains(CpuId cpu, Addr addr) const;
    /** State of @p addr's line in @p cpu's secondary cache. */
    LineState l2State(CpuId cpu, Addr addr) const;

    /** True iff @p addr lies in a registered update-protocol page. */
    bool isUpdateAddr(Addr addr) const;

    /** @} */

    /** @name Verification hooks @{ */

    /** Attach (or, with nullptr, detach) a single event observer. */
    void
    setObserver(MemEventObserver *obs)
    {
        fan.clear();
        fan.add(obs);
    }

    /**
     * Attach several observers at once (nulls are skipped) through
     * the flat fan-out — check / obs / dft taps without the extra
     * virtual hop a MemEventObserverMux would cost per event.
     */
    void
    setObservers(std::initializer_list<MemEventObserver *> taps)
    {
        fan.clear();
        for (MemEventObserver *tap : taps)
            fan.add(tap);
    }

    /**
     * The fan-out of attached observers (engine-level events such as
     * onBlockOp are reported through it by the simulation engine).
     */
    const ObserverFanout &observers() const { return fan; }

    /** The sole attached observer, or nullptr (compat accessor). */
    MemEventObserver *eventObserver() const { return fan.single(); }

    /** Read-only views for invariant audits. */
    const L1Cache &l1Cache(CpuId cpu) const { return cpus[cpu].l1; }
    const L2Cache &l2Cache(CpuId cpu) const { return cpus[cpu].l2; }
    const WriteBuffer &l1WriteBuffer(CpuId cpu) const
    {
        return cpus[cpu].l1Wb;
    }
    const WriteBuffer &l2WriteBuffer(CpuId cpu) const
    {
        return cpus[cpu].l2Wb;
    }

    /**
     * Test-only fault injection: force the state of @p addr's
     * secondary line on @p cpu, installing or evicting it as needed
     * and notifying the observer of the transition.  This lets the
     * checker tests seed SWMR, inclusion, and illegal-edge defects
     * the production protocol can never produce.
     */
    void debugSetL2State(CpuId cpu, Addr addr, LineState state);

    /** @} */

    /** @name Live-points checkpointing @{ */

    /**
     * Serialize the complete warm state — every cache tag array,
     * both write buffers, the in-flight fills, the miss-taxonomy
     * sets, the prefetch buffer, and the bus — deterministically
     * (unordered containers are written sorted, so identical states
     * produce identical bytes).  The observer and the update-page
     * registration are wiring, not state, and are not saved.
     */
    void saveState(binio::BinaryWriter &w) const;

    /**
     * Inverse of saveState().  Must be called on a MemorySystem
     * built from the same MachineConfig; false with @p error set on
     * truncated input or a geometry mismatch.
     */
    bool loadState(binio::BinaryReader &r, std::string *error);

    /** @} */

  private:
    /** In-flight fill of a primary-cache line (lockup-free L2). */
    struct InFlightFill
    {
        Cycles readyAt = 0;
        MissCause cause = MissCause::Plain;
        bool byPrefetch = false;
    };

    /** One entry of the Blk_ByPref source prefetch buffer. */
    struct BufferLine
    {
        Addr lineAddr = invalidAddr;
        Cycles readyAt = 0;
    };

    /** All per-processor state. */
    struct CpuMem
    {
        /**
         * The hot banks — all three tag arrays, the L2 state bank,
         * and both write-buffer rings — are carved from the per-run
         * arena, so every processor's per-access state is contiguous.
         */
        CpuMem(const MachineConfig &c, SimArena &arena)
            : l1(c.l1Size, c.l1LineSize, c.l1Ways, arena),
              icache(c.iCacheSize, c.iCacheLineSize, 1, arena),
              l2(c.l2Size, c.l2LineSize, c.l2Ways, arena),
              l1Wb(c.l1WriteBufferDepth, arena),
              l2Wb(c.l2WriteBufferDepth, arena)
        {}

        /** Arena bytes one processor's banks consume. */
        static std::size_t
        arenaBytes(const MachineConfig &c)
        {
            return L1Cache::arenaBytes(c.l1Size, c.l1LineSize) +
                   L1Cache::arenaBytes(c.iCacheSize, c.iCacheLineSize) +
                   L2Cache::arenaBytes(c.l2Size, c.l2LineSize) +
                   WriteBuffer::arenaBytes(c.l1WriteBufferDepth) +
                   WriteBuffer::arenaBytes(c.l2WriteBufferDepth);
        }

        L1Cache l1;
        /** Primary instruction cache (valid/invalid lines). */
        L1Cache icache;
        L2Cache l2;
        WriteBuffer l1Wb;
        WriteBuffer l2Wb;
        /** Keyed by primary-line address. */
        std::unordered_map<Addr, InFlightFill> inFlight;
        /**
         * Miss-classification marks on primary lines: coherence
         * (invalidated by another processor) and blockEvict (last
         * evicted by a block-operation fill) flags.
         */
        MarkTable marks;
        /** Blk_ByPref source prefetch buffer (FIFO). */
        std::deque<BufferLine> prefetchBuffer;
    };

    /**
     * Two-level interconnect state, allocated only when
     * numSockets > 1 so the flat single-bus machine pays one null
     * test per bus transaction and stays bit-for-bit identical.
     */
    struct NumaState
    {
        explicit NumaState(const MachineConfig &c)
            : socketBus(c.numSockets)
        {}

        /** One snooping bus per socket. */
        std::vector<Bus> socketBus;
        /** The inter-socket link, serially reusable like a bus. */
        Bus link;
        NumaCounters counters;
    };

    /** @name Internal helpers @{ */

    Addr l1Line(Addr addr) const { return alignDown(addr, cfg.l1LineSize); }
    Addr l2Line(Addr addr) const { return alignDown(addr, cfg.l2LineSize); }

    /** Classify the cause of a primary-cache read miss. */
    MissCause classifyMiss(CpuMem &mem, Addr line);

    /** @name Observer notification helpers @{ */

    /** Report a secondary-line transition (self-loops elided). */
    void
    notifyL2(CpuId cpu, Addr l2_line, LineState from, LineState to)
    {
        if (fan.active() && from != to)
            fan.onL2Transition(cpu, l2Line(l2_line), from, to);
    }

    /** Report the start of a processor-side operation. */
    void
    opBegin(MemOpKind op, CpuId cpu, Addr addr)
    {
        if (fan.active())
            fan.onOperationBegin(*this, op, cpu, addr);
    }

    /** Report the completion of a processor-side operation. */
    void
    opEnd(MemOpKind op, CpuId cpu, Addr addr)
    {
        if (fan.active())
            fan.onOperationEnd(*this, op, cpu, addr);
    }

    /**
     * Report a completed data access to an observer that asked for
     * per-access events.  Unlike opEnd (miss paths only, feeding the
     * invariant checker), this fires for every outcome — the event
     * record is built only behind the wantsAccess gate, so the
     * default configuration pays a single flag test.
     */
    void
    notifyAccess(MemOpKind op, CpuId cpu, Addr addr, Cycles issued,
                 const AccessContext &ctx, const AccessResult &res,
                 bool dropped = false, bool whole_line = false,
                 bool invalidated = false, bool via_buffer = false)
    {
        if (!fan.wantsAccessEvents())
            return;
        MemAccessEvent event;
        event.kind = op;
        event.cpu = cpu;
        event.addr = addr;
        event.issued = issued;
        event.ctx = ctx;
        event.result = res;
        event.dropped = dropped;
        event.wholeLine = whole_line;
        event.invalidated = invalidated;
        event.viaBuffer = via_buffer;
        fan.onAccess(event);
    }

    /** @} */

    /** @name Instrumented state mutators @{ */

    /** Change the state of @p cpu's resident secondary line. */
    void setL2State(CpuId cpu, Addr addr, LineState state);

    /** Invalidate @p cpu's secondary line if present. */
    void invalidateL2(CpuId cpu, Addr l2_line);

    /** Invalidate @p cpu's primary line if present. */
    void dropL1(CpuId cpu, Addr l1_line);

    /**
     * Tag-array part of a secondary fill: install @p l2_line in
     * @p state, invalidate the victim's covered primary lines, and
     * notify the observer.  Bus costs are the caller's business.
     * @return {victim line address or invalidAddr, victim was dirty}.
     */
    std::pair<Addr, bool> installL2(CpuId cpu, Addr l2_line,
                                    LineState state);

    /** @} */

    /**
     * Install a primary line, recording the eviction cause of the
     * victim and clearing stale classification marks for the line.
     */
    void fillL1(CpuId cpu, Addr addr, bool block_op_fill);

    /**
     * Invalidate the line of @p addr in every processor except
     * @p requester, marking coherence-invalidated primary lines.
     */
    void snoopInvalidate(CpuId requester, Addr l2_line);

    /**
     * Firefly update: sharers keep their (now updated) copies.
     * @return true iff any other processor held the line.
     */
    bool snoopUpdate(CpuId requester, Addr l2_line);

    /** True iff any processor other than @p requester holds the line. */
    bool sharedElsewhere(CpuId requester, Addr l2_line) const;

    /** Fill state a read miss installs (protocol dependent). */
    LineState readFillState(CpuId requester, Addr l2_line) const;

    /**
     * Perform the bus read for a missing secondary line, including
     * snooping (Illinois: a Modified owner supplies the line and
     * both end Shared; with @p exclusive all other copies die).
     *
     * @param when  Cycle the request reaches the bus queue.
     * @return The cycle the data arrives at the requester.
     */
    Cycles busReadLine(CpuId cpu, Addr l2_line, Cycles when, bool exclusive);

    /**
     * Install a secondary line, handling victim writeback and
     * inclusion (covered primary lines of the victim die).
     */
    void fillL2(CpuId cpu, Addr l2_line, LineState state, Cycles when);

    /**
     * Schedule a write that needs the bus through the L2-to-bus write
     * buffer.  @p remote_mask names the sockets (beyond @p cpu's own)
     * that held the line when the snoop was decided — it must be
     * captured *before* the snoop mutates remote state.
     * @return the cycle the entry finishes draining.
     */
    Cycles scheduleL2WbEntry(CpuId cpu, CpuMem &mem, Addr l2_line,
                             Cycles ready, Cycles occupancy, BusTxn kind,
                             std::uint32_t bytes,
                             std::uint32_t remote_mask);

    /** @name Two-level interconnect helpers (numa != nullptr only) @{ */

    /**
     * Bitmask of sockets other than @p requester's that hold a valid
     * copy of @p l2_line — the home directory's presence view, which
     * decides whether a snoop crosses the link.
     */
    std::uint32_t remoteHolderMask(CpuId requester, Addr l2_line) const;

    /**
     * Timing of a line read on the two-level interconnect: local
     * socket bus, then (unless the directory filters it) the link,
     * remote snoops, and the remote-home memory penalty.
     * @return the cycle the data arrives at the requester.
     */
    Cycles numaReadLine(unsigned socket, Addr l2_line, Cycles when,
                        Cycles occupancy, std::uint32_t bytes,
                        std::uint32_t remote_mask);

    /**
     * Cross-socket completion of a write-side transaction granted the
     * local socket bus at @p grant: forwards to the sockets in
     * @p remote_mask plus (for memory-bound kinds) a remote home.
     * @p snoop_broadcast gates the filter counters — writebacks
     * consult no remote cache and are not snoop decisions.
     * @return the cycle the transaction fully completes.
     */
    Cycles numaWriteDone(unsigned socket, Addr l2_line, Cycles grant,
                         Cycles occupancy, BusTxn kind,
                         std::uint32_t bytes, std::uint32_t remote_mask,
                         bool snoop_broadcast);

    /** @} */

    /** @} */

    MachineConfig cfg;
    Bus theBus;
    /** Two-level interconnect; null on the flat single-bus machine. */
    std::unique_ptr<NumaState> numa;
    /**
     * Per-run bump arena holding every processor's hot banks; must
     * precede `cpus`, whose members carve spans from it.
     */
    SimArena arena;
    std::vector<CpuMem> cpus;
    /** Flat fan-out of passive coherence observers (often empty). */
    ObserverFanout fan;
    /** Lines last touched by a bypassing block op and left uncached. */
    MarkTable bypassMarks;
    const std::unordered_set<Addr> *updatePages = nullptr;
};

} // namespace oscache

#endif // OSCACHE_MEM_MEMSYS_HH
