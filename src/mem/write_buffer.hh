/**
 * @file
 * Timed FIFO write buffer.
 *
 * Entries carry an address (so reads can detect same-line pending
 * writes) and the cycle at which the entry finishes draining.  The
 * drain schedule is computed greedily at enqueue time: each entry
 * starts when both the previous entry has finished and the enqueue
 * has happened.  The processor stalls only when the buffer is full at
 * enqueue time, per the paper's write-buffer-overflow accounting.
 *
 * Storage is a fixed ring of `depth` entries — the buffer is bounded
 * by construction, so the ring never reallocates; it can be owned or
 * carved from the per-run SimArena next to the cache tag banks.
 */

#ifndef OSCACHE_MEM_WRITE_BUFFER_HH
#define OSCACHE_MEM_WRITE_BUFFER_HH

#include <vector>

#include "common/binio.hh"
#include "common/types.hh"
#include "mem/arena.hh"

namespace oscache
{

/**
 * A bounded write buffer whose drain times are precomputed.
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(unsigned depth)
        : capacity(depth), slots(ringSlots(depth))
    {
        ownedRing.resize(slots);
        ring = ownedRing.data();
    }

    /** As above, with the entry ring carved from @p arena. */
    WriteBuffer(unsigned depth, SimArena &arena)
        : capacity(depth), slots(ringSlots(depth))
    {
        ring = arena.allocate<Entry>(slots);
    }

    WriteBuffer(const WriteBuffer &) = delete;
    WriteBuffer &operator=(const WriteBuffer &) = delete;
    WriteBuffer(WriteBuffer &&) = default;
    WriteBuffer &operator=(WriteBuffer &&) = default;

    /** Arena bytes a buffer of @p depth consumes. */
    static constexpr std::size_t
    arenaBytes(unsigned depth)
    {
        return SimArena::spanBytes(ringSlots(depth), sizeof(Entry));
    }

    /** Drop entries that have drained by @p now. */
    void
    prune(Cycles now)
    {
        while (count > 0 && ring[head].completeAt <= now) {
            head = next(head);
            --count;
        }
    }

    /**
     * Cycles the producer must wait at @p now for a free slot.
     * Zero when a slot is already free.
     */
    Cycles
    stallUntilSlot(Cycles now)
    {
        prune(now);
        if (count < capacity)
            return 0;
        return ring[head].completeAt - now;
    }

    /**
     * Insert an entry whose drain completes at @p complete_at.
     * The caller must have resolved any full-buffer stall first.
     */
    void
    push(Addr line_addr, Cycles complete_at)
    {
        if (count == slots)
            grow();
        std::size_t idx = head + count;
        if (idx >= slots)
            idx -= slots;
        ring[idx] = {line_addr, complete_at};
        ++count;
        lastComplete = complete_at;
    }

    /**
     * Earliest cycle a newly enqueued entry may start draining:
     * after the most recently scheduled entry.
     */
    Cycles
    nextServiceStart(Cycles now) const
    {
        return lastComplete > now ? lastComplete : now;
    }

    /** Completion time of the newest scheduled entry. */
    Cycles lastCompletion() const { return lastComplete; }

    /**
     * Completion time of the latest pending write to @p line_addr,
     * or 0 when none is pending (reads bypass writes except to the
     * same line).
     */
    Cycles
    pendingLineDrain(Addr line_addr) const
    {
        Cycles t = 0;
        for (std::size_t i = 0, idx = head; i < count;
             ++i, idx = next(idx))
            if (ring[idx].lineAddr == line_addr && ring[idx].completeAt > t)
                t = ring[idx].completeAt;
        return t;
    }

    /** Number of entries still draining at the last prune. */
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    unsigned depth() const { return capacity; }

    /**
     * Consistency probe for the invariant checker: entries drain in
     * FIFO order (completion times non-decreasing front to back) and
     * lastCompletion() bounds them all.  The greedy drain schedule
     * guarantees this; a violation means entries were scheduled out
     * of order.
     */
    bool
    drainOrderConsistent() const
    {
        Cycles prev = 0;
        for (std::size_t i = 0, idx = head; i < count;
             ++i, idx = next(idx)) {
            if (ring[idx].completeAt < prev)
                return false;
            prev = ring[idx].completeAt;
        }
        return count == 0 || prev <= lastComplete;
    }

    /** Serialize pending entries and the drain clock. */
    void
    saveState(binio::BinaryWriter &w) const
    {
        w.put(std::uint64_t(count));
        for (std::size_t i = 0, idx = head; i < count;
             ++i, idx = next(idx)) {
            w.put(ring[idx].lineAddr);
            w.put(ring[idx].completeAt);
        }
        w.put(lastComplete);
    }

    /** Inverse of saveState(); false on truncation or overflow. */
    bool
    loadState(binio::BinaryReader &r)
    {
        std::uint64_t n = 0;
        if (!r.get(n) || n > capacity)
            return false;
        head = 0;
        count = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e{};
            if (!r.get(e.lineAddr) || !r.get(e.completeAt))
                return false;
            ring[count++] = e;
        }
        return r.get(lastComplete);
    }

  private:
    struct Entry
    {
        Addr lineAddr;
        Cycles completeAt;
    };

    /**
     * Physical ring slots for a logical depth: the drain schedule
     * lets an entry ride the full-buffer stall boundary (the producer
     * stalls but the freed slot is only reclaimed at the next prune),
     * so occupancy transiently exceeds the depth.  A few slack slots
     * absorb that; overflow past the slack is a scheduling bug and
     * panics in push().
     */
    static constexpr std::size_t
    ringSlots(unsigned depth)
    {
        return std::size_t{depth} + 8;
    }

    /**
     * Spill the ring into a larger owned buffer.  A producer that
     * ignores the stall accounting (or a slack overrun) keeps the
     * deque-era unbounded semantics; the simulator itself never
     * exceeds the slack, so the hot path stays on the fixed ring.
     */
    void
    grow()
    {
        std::vector<Entry> bigger(slots * 2);
        for (std::size_t i = 0, idx = head; i < count;
             ++i, idx = next(idx))
            bigger[i] = ring[idx];
        ownedRing = std::move(bigger);
        ring = ownedRing.data();
        slots = ownedRing.size();
        head = 0;
    }

    std::size_t next(std::size_t idx) const
    {
        return idx + 1 == slots ? 0 : idx + 1;
    }

    unsigned capacity;
    std::size_t slots;
    Cycles lastComplete = 0;
    /** Fixed entry ring; arena span or ownedRing.data(). */
    Entry *ring = nullptr;
    std::size_t head = 0;
    std::size_t count = 0;
    /** Backing storage when constructed without an arena. */
    std::vector<Entry> ownedRing;
};

} // namespace oscache

#endif // OSCACHE_MEM_WRITE_BUFFER_HH
