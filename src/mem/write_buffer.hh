/**
 * @file
 * Timed FIFO write buffer.
 *
 * Entries carry an address (so reads can detect same-line pending
 * writes) and the cycle at which the entry finishes draining.  The
 * drain schedule is computed greedily at enqueue time: each entry
 * starts when both the previous entry has finished and the enqueue
 * has happened.  The processor stalls only when the buffer is full at
 * enqueue time, per the paper's write-buffer-overflow accounting.
 */

#ifndef OSCACHE_MEM_WRITE_BUFFER_HH
#define OSCACHE_MEM_WRITE_BUFFER_HH

#include <deque>

#include "common/binio.hh"
#include "common/types.hh"

namespace oscache
{

/**
 * A bounded write buffer whose drain times are precomputed.
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(unsigned depth) : capacity(depth) {}

    /** Drop entries that have drained by @p now. */
    void
    prune(Cycles now)
    {
        while (!entries.empty() && entries.front().completeAt <= now)
            entries.pop_front();
    }

    /**
     * Cycles the producer must wait at @p now for a free slot.
     * Zero when a slot is already free.
     */
    Cycles
    stallUntilSlot(Cycles now)
    {
        prune(now);
        if (entries.size() < capacity)
            return 0;
        return entries.front().completeAt - now;
    }

    /**
     * Insert an entry whose drain completes at @p complete_at.
     * The caller must have resolved any full-buffer stall first.
     */
    void
    push(Addr line_addr, Cycles complete_at)
    {
        entries.push_back({line_addr, complete_at});
        lastComplete = complete_at;
    }

    /**
     * Earliest cycle a newly enqueued entry may start draining:
     * after the most recently scheduled entry.
     */
    Cycles
    nextServiceStart(Cycles now) const
    {
        return lastComplete > now ? lastComplete : now;
    }

    /** Completion time of the newest scheduled entry. */
    Cycles lastCompletion() const { return lastComplete; }

    /**
     * Completion time of the latest pending write to @p line_addr,
     * or 0 when none is pending (reads bypass writes except to the
     * same line).
     */
    Cycles
    pendingLineDrain(Addr line_addr) const
    {
        Cycles t = 0;
        for (const auto &e : entries)
            if (e.lineAddr == line_addr && e.completeAt > t)
                t = e.completeAt;
        return t;
    }

    /** Number of entries still draining at the last prune. */
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }
    unsigned depth() const { return capacity; }

    /**
     * Consistency probe for the invariant checker: entries drain in
     * FIFO order (completion times non-decreasing front to back) and
     * lastCompletion() bounds them all.  The greedy drain schedule
     * guarantees this; a violation means entries were scheduled out
     * of order.
     */
    bool
    drainOrderConsistent() const
    {
        Cycles prev = 0;
        for (const auto &e : entries) {
            if (e.completeAt < prev)
                return false;
            prev = e.completeAt;
        }
        return entries.empty() || prev <= lastComplete;
    }

    /** Serialize pending entries and the drain clock. */
    void
    saveState(binio::BinaryWriter &w) const
    {
        w.put(std::uint64_t(entries.size()));
        for (const auto &e : entries) {
            w.put(e.lineAddr);
            w.put(e.completeAt);
        }
        w.put(lastComplete);
    }

    /** Inverse of saveState(); false on truncation or overflow. */
    bool
    loadState(binio::BinaryReader &r)
    {
        std::uint64_t n = 0;
        if (!r.get(n) || n > capacity)
            return false;
        entries.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e{};
            if (!r.get(e.lineAddr) || !r.get(e.completeAt))
                return false;
            entries.push_back(e);
        }
        return r.get(lastComplete);
    }

  private:
    struct Entry
    {
        Addr lineAddr;
        Cycles completeAt;
    };

    unsigned capacity;
    Cycles lastComplete = 0;
    std::deque<Entry> entries;
};

} // namespace oscache

#endif // OSCACHE_MEM_WRITE_BUFFER_HH
