#include "mem/memsys.hh"

#include <algorithm>

#include "common/log.hh"

namespace oscache
{

MemorySystem::MemorySystem(const MachineConfig &config) : cfg(config)
{
    cfg.check();
    // One contiguous reservation covers every processor's tag banks,
    // the L2 state banks, and both write-buffer rings.
    arena.reserve(std::size_t{cfg.numCpus} * CpuMem::arenaBytes(cfg));
    cpus.reserve(cfg.numCpus);
    for (unsigned i = 0; i < cfg.numCpus; ++i)
        cpus.emplace_back(cfg, arena);
    if (cfg.numaActive())
        numa = std::make_unique<NumaState>(cfg);
}

std::uint32_t
MemorySystem::remoteHolderMask(CpuId requester, Addr l2_line) const
{
    const unsigned socket = cfg.socketOf(requester);
    std::uint32_t mask = 0;
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        const unsigned s = cfg.socketOf(c);
        if (s == socket)
            continue;
        if (cpus[c].l2.state(l2_line) != LineState::Invalid)
            mask |= 1u << s;
    }
    return mask;
}

Cycles
MemorySystem::numaReadLine(unsigned socket, Addr l2_line, Cycles when,
                           Cycles occupancy, std::uint32_t bytes,
                           std::uint32_t remote_mask)
{
    NumaState &nu = *numa;
    const Cycles grant =
        nu.socketBus[socket].acquire(when, occupancy, BusTxn::LineFill,
                                     bytes);
    const unsigned home = cfg.homeSocketOf(l2_line);
    if (home == socket)
        ++nu.counters.localHomeReads;
    else
        ++nu.counters.remoteHomeReads;
    if (remote_mask == 0)
        ++nu.counters.snoopsFiltered;
    else
        ++nu.counters.snoopsForwarded;
    if (remote_mask == 0 && home == socket)
        return grant + cfg.busMemLatency();

    // Request (and returning data) cross the link; every holding
    // socket is probed, and a remote home adds its access penalty.
    const Cycles lg = nu.link.acquire(grant, cfg.linkTransferOccupancy,
                                      BusTxn::LineFill, bytes);
    Cycles done = lg + cfg.busMemLatency();
    if (home != socket)
        done += cfg.remoteMemPenalty;
    for (unsigned r = 0; r < cfg.numSockets; ++r) {
        if (r == socket || ((remote_mask >> r) & 1u) == 0)
            continue;
        const Cycles rg = nu.socketBus[r].acquire(
            lg, cfg.invalOccupancy, BusTxn::LineFill, 0);
        done = std::max(done,
                        rg + cfg.invalOccupancy + cfg.linkMsgOccupancy);
    }
    return done;
}

Cycles
MemorySystem::numaWriteDone(unsigned socket, Addr l2_line, Cycles grant,
                            Cycles occupancy, BusTxn kind,
                            std::uint32_t bytes,
                            std::uint32_t remote_mask,
                            bool snoop_broadcast)
{
    NumaState &nu = *numa;
    Cycles done = grant + occupancy;
    if (snoop_broadcast) {
        if (remote_mask == 0)
            ++nu.counters.snoopsFiltered;
        else
            ++nu.counters.snoopsForwarded;
    }
    // Memory-bound kinds must also reach a remote home's socket.
    std::uint32_t fwd = remote_mask;
    const unsigned home = cfg.homeSocketOf(l2_line);
    if (kind != BusTxn::Invalidate && home != socket)
        fwd |= 1u << home;
    if (fwd == 0)
        return done;
    const Cycles link_occ =
        kind == BusTxn::WriteBack || kind == BusTxn::Dma
            ? cfg.linkTransferOccupancy
            : cfg.linkMsgOccupancy;
    const Cycles lg = nu.link.acquire(grant, link_occ, kind, bytes);
    for (unsigned r = 0; r < cfg.numSockets; ++r) {
        if (r == socket || ((fwd >> r) & 1u) == 0)
            continue;
        const Cycles rg = nu.socketBus[r].acquire(lg, occupancy, kind, 0);
        done = std::max(done, rg + occupancy);
    }
    return done;
}

bool
MemorySystem::isUpdateAddr(Addr addr) const
{
    if (updatePages == nullptr || updatePages->empty())
        return false;
    return updatePages->count(alignDown(addr, Addr{4096})) != 0;
}

bool
MemorySystem::l1Contains(CpuId cpu, Addr addr) const
{
    return cpus[cpu].l1.contains(addr);
}

LineState
MemorySystem::l2State(CpuId cpu, Addr addr) const
{
    return cpus[cpu].l2.state(addr);
}

MissCause
MemorySystem::classifyMiss(CpuMem &mem, Addr line)
{
    // One flat probe yields both per-processor mark classes; bypass
    // marks live in their own (usually empty) global table whose
    // population test keeps non-bypassing schemes from probing it.
    const std::uint8_t flags = mem.marks.flagsAt(line);
    if ((flags & MarkTable::coherence) != 0)
        return MissCause::Coherence;
    if (bypassMarks.any(MarkTable::bypass) &&
        bypassMarks.test(line, MarkTable::bypass))
        return MissCause::Reuse;
    if ((flags & MarkTable::blockEvict) != 0)
        return MissCause::Displacement;
    return MissCause::Plain;
}

void
MemorySystem::fillL1(CpuId cpu, Addr addr, bool block_op_fill)
{
    CpuMem &mem = cpus[cpu];
    const Addr line = mem.l1.lineAddr(addr);
    const Addr victim = mem.l1.fill(addr);
    if (victim != invalidAddr) {
        if (fan.active())
            fan.onL1Drop(cpu, victim);
        if (block_op_fill)
            mem.marks.set(victim, MarkTable::blockEvict);
        else if (mem.marks.any(MarkTable::blockEvict))
            mem.marks.clear(victim, MarkTable::blockEvict);
    }
    // A fresh residency wipes any stale classification marks — one
    // probe for both per-processor classes, and the bypass table is
    // skipped entirely while no scheme has populated it.
    mem.marks.clearAll(line, MarkTable::coherence | MarkTable::blockEvict);
    if (bypassMarks.any(MarkTable::bypass))
        bypassMarks.clear(line, MarkTable::bypass);
    if (fan.active())
        fan.onL1Fill(cpu, line);
}

void
MemorySystem::dropL1(CpuId cpu, Addr l1_line)
{
    CpuMem &mem = cpus[cpu];
    if (!mem.l1.contains(l1_line))
        return;
    mem.l1.invalidate(l1_line);
    if (fan.active())
        fan.onL1Drop(cpu, mem.l1.lineAddr(l1_line));
}

void
MemorySystem::setL2State(CpuId cpu, Addr addr, LineState state)
{
    CpuMem &mem = cpus[cpu];
    const LineState prior = mem.l2.state(addr);
    if (prior == state)
        return;
    mem.l2.setState(addr, state);
    notifyL2(cpu, addr, prior, state);
}

void
MemorySystem::invalidateL2(CpuId cpu, Addr l2_line)
{
    CpuMem &mem = cpus[cpu];
    const LineState prior = mem.l2.state(l2_line);
    if (prior == LineState::Invalid)
        return;
    mem.l2.invalidate(l2_line);
    notifyL2(cpu, l2_line, prior, LineState::Invalid);
}

std::pair<Addr, bool>
MemorySystem::installL2(CpuId cpu, Addr l2_line, LineState state)
{
    CpuMem &mem = cpus[cpu];
    const LineState prior = mem.l2.state(l2_line);
    // Capture the would-be victim's state for the observer before
    // the fill overwrites it.
    LineState victim_state = LineState::Invalid;
    if (prior == LineState::Invalid) {
        const auto [vline, vway] = mem.l2.peekVictim(l2_line);
        (void)vway;
        if (vline != invalidAddr)
            victim_state = mem.l2.state(vline);
    }
    Addr victim = invalidAddr;
    bool victim_dirty = false;
    mem.l2.fill(l2_line, state, victim, victim_dirty);
    if (victim != invalidAddr) {
        // Inclusion: primary copies of the victim die with it.
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize)
            dropL1(cpu, victim + off);
        notifyL2(cpu, victim, victim_state, LineState::Invalid);
    }
    notifyL2(cpu, l2_line, prior, state);
    return {victim, victim_dirty};
}

void
MemorySystem::debugSetL2State(CpuId cpu, Addr addr, LineState state)
{
    const Addr line = l2Line(addr);
    if (state == LineState::Invalid) {
        invalidateL2(cpu, line);
        return;
    }
    const LineState prior = cpus[cpu].l2.state(line);
    if (prior == LineState::Invalid) {
        installL2(cpu, line, state);
        return;
    }
    setL2State(cpu, line, state);
}

void
MemorySystem::snoopInvalidate(CpuId requester, Addr l2_line)
{
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        CpuMem &other = cpus[c];
        if (other.l2.state(l2_line) == LineState::Invalid)
            continue;
        invalidateL2(c, l2_line);
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize) {
            const Addr sub = l2_line + off;
            if (other.l1.contains(sub)) {
                dropL1(c, sub);
                other.marks.set(sub, MarkTable::coherence);
            }
        }
    }
}

bool
MemorySystem::snoopUpdate(CpuId requester, Addr l2_line)
{
    bool any = false;
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        CpuMem &other = cpus[c];
        if (other.l2.state(l2_line) == LineState::Invalid)
            continue;
        any = true;
        // Sharers keep their (updated) copies; everyone ends Shared
        // and memory holds the latest data (Firefly semantics).
        setL2State(c, l2_line, LineState::Shared);
    }
    return any;
}

LineState
MemorySystem::readFillState(CpuId requester, Addr l2_line) const
{
    if (sharedElsewhere(requester, l2_line))
        return LineState::Shared;
    // Illinois grants clean-exclusive on a private read; plain MSI
    // loads Shared and pays an upgrade on the first write.
    return cfg.protocol == CoherenceProtocol::Illinois
        ? LineState::Exclusive : LineState::Shared;
}

bool
MemorySystem::sharedElsewhere(CpuId requester, Addr l2_line) const
{
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == requester)
            continue;
        if (cpus[c].l2.state(l2_line) != LineState::Invalid)
            return true;
    }
    return false;
}

Cycles
MemorySystem::busReadLine(CpuId cpu, Addr l2_line, Cycles when,
                          bool exclusive)
{
    // The holder mask is captured before the snoop below mutates
    // remote state; the state evolution itself is identical to the
    // flat bus (the directory filter is precise), only the timing
    // and traffic accounting differ.
    Cycles arrive;
    if (numa == nullptr) {
        const Cycles grant =
            theBus.acquire(when, cfg.lineTransferOccupancy,
                           BusTxn::LineFill, cfg.l2LineSize);
        arrive = grant + cfg.busMemLatency();
    } else {
        arrive = numaReadLine(cfg.socketOf(cpu), l2_line, when,
                              cfg.lineTransferOccupancy, cfg.l2LineSize,
                              remoteHolderMask(cpu, l2_line));
    }
    bool supplied = false;
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        if (c == cpu)
            continue;
        CpuMem &other = cpus[c];
        const LineState st = other.l2.state(l2_line);
        if (st == LineState::Invalid)
            continue;
        if (st == LineState::Modified)
            supplied = true; // Owner supplies; memory is updated.
        if (exclusive) {
            invalidateL2(c, l2_line);
            for (std::uint32_t off = 0; off < cfg.l2LineSize;
                 off += cfg.l1LineSize) {
                const Addr sub = l2_line + off;
                if (other.l1.contains(sub)) {
                    dropL1(c, sub);
                    other.marks.set(sub, MarkTable::coherence);
                }
            }
        } else {
            setL2State(c, l2_line, LineState::Shared);
        }
    }
    (void)supplied; // Cache-to-cache supply uses the same timing.
    return arrive;
}

void
MemorySystem::fillL2(CpuId cpu, Addr l2_line, LineState state, Cycles when)
{
    const auto [victim, victim_dirty] = installL2(cpu, l2_line, state);
    if (victim == invalidAddr || !victim_dirty)
        return;
    if (numa == nullptr) {
        theBus.acquire(when, cfg.lineTransferOccupancy,
                       BusTxn::WriteBack, cfg.l2LineSize);
        return;
    }
    const unsigned socket = cfg.socketOf(cpu);
    const Cycles grant = numa->socketBus[socket].acquire(
        when, cfg.lineTransferOccupancy, BusTxn::WriteBack,
        cfg.l2LineSize);
    numaWriteDone(socket, victim, grant, cfg.lineTransferOccupancy,
                  BusTxn::WriteBack, cfg.l2LineSize, 0,
                  /*snoop_broadcast=*/false);
}

Cycles
MemorySystem::scheduleL2WbEntry(CpuId cpu, CpuMem &mem, Addr l2_line,
                                Cycles ready, Cycles occupancy,
                                BusTxn kind, std::uint32_t bytes,
                                std::uint32_t remote_mask)
{
    const Cycles slot_wait = mem.l2Wb.stallUntilSlot(ready);
    const Cycles start = mem.l2Wb.nextServiceStart(ready + slot_wait);
    Cycles done;
    if (numa == nullptr) {
        const Cycles grant = theBus.acquire(start, occupancy, kind, bytes);
        done = grant + occupancy;
    } else {
        const unsigned socket = cfg.socketOf(cpu);
        const Cycles grant = numa->socketBus[socket].acquire(
            start, occupancy, kind, bytes);
        done = numaWriteDone(socket, l2_line, grant, occupancy, kind,
                             bytes, remote_mask,
                             /*snoop_broadcast=*/true);
    }
    mem.l2Wb.push(l2_line, done);
    return done;
}

AccessResult
MemorySystem::read(CpuId cpu, Addr addr, Cycles now, const AccessContext &ctx)
{
    opBegin(MemOpKind::Read, cpu, addr);
    CpuMem &mem = cpus[cpu];
    AccessResult res;
    const Cycles issued = now;
    const Addr line = l1Line(addr);
    const Addr l2line = l2Line(addr);

    // One tag probe serves both the bypass test and the hit path;
    // the promote happens only after the in-flight check so the LRU
    // order matches the associative ablations' record-at-a-time
    // semantics exactly.
    const std::uint32_t l1_way = mem.l1.find(addr);
    const bool l1_hit = l1_way < mem.l1.ways();

    // Reads bypass buffered writes except to the same line: if the
    // line is not cached but a write to it is still draining, the
    // read must wait for the drain.
    if (!l1_hit) {
        const Cycles pend = std::max(mem.l1Wb.pendingLineDrain(line),
                                     mem.l2Wb.pendingLineDrain(l2line));
        if (pend > now)
            now = pend;
    }

    // Outstanding fill (typically prefetch-initiated)?  The register
    // file is empty whenever no prefetch is in flight; the empty()
    // test skips a hash probe on every read of a prefetch-free run.
    if (!mem.inFlight.empty()) {
        auto in_flight = mem.inFlight.find(line);
        if (in_flight != mem.inFlight.end()) {
            const InFlightFill fill = in_flight->second;
            mem.inFlight.erase(in_flight);
            if (fill.readyAt > now) {
                // Late prefetch: the miss is only partially hidden.
                res.completeAt = fill.readyAt;
                res.l1Miss = true;
                res.level = ServiceLevel::InFlight;
                res.cause = fill.cause;
                res.partiallyHidden = fill.byPrefetch;
                res.stall = res.completeAt - (now + cfg.l1HitLatency);
                notifyAccess(MemOpKind::Read, cpu, addr, issued, ctx, res);
                return res;
            }
            // Fill completed before the demand access: a full hit.
        }
    }

    if (l1_hit) {
        mem.l1.promoteWay(addr, l1_way);
        res.completeAt = now + cfg.l1HitLatency;
        notifyAccess(MemOpKind::Read, cpu, addr, issued, ctx, res);
        return res;
    }

    res.l1Miss = true;
    res.cause = classifyMiss(mem, line);

    if (mem.l2.touch(addr)) {
        res.level = ServiceLevel::L2;
        res.completeAt = now + cfg.l2HitLatency;
    } else {
        res.level = ServiceLevel::Memory;
        const Cycles detect = now + cfg.l2HitLatency;
        const Cycles arrive = busReadLine(cpu, l2line, detect, false);
        res.completeAt = arrive;
        if (ctx.allocate)
            fillL2(cpu, l2line, readFillState(cpu, l2line), arrive);
    }

    if (ctx.allocate) {
        fillL1(cpu, addr, ctx.blockOpBody);
    } else {
        // Bypassed read: in a processor-driven copy this line would
        // now be cached; its first future touch is a reuse miss.
        bypassMarks.set(line, MarkTable::bypass);
    }
    res.stall = res.completeAt - (now + cfg.l1HitLatency);
    opEnd(MemOpKind::Read, cpu, addr);
    notifyAccess(MemOpKind::Read, cpu, addr, issued, ctx, res);
    return res;
}

AccessResult
MemorySystem::write(CpuId cpu, Addr addr, Cycles now,
                    const AccessContext &ctx)
{
    opBegin(MemOpKind::Write, cpu, addr);
    CpuMem &mem = cpus[cpu];
    AccessResult res;
    const Cycles issued = now;
    const Addr line = l1Line(addr);
    const Addr l2line = l2Line(addr);

    // Stall only on a full L1-to-L2 write buffer.
    const Cycles wb_stall = mem.l1Wb.stallUntilSlot(now);
    res.stall = wb_stall;
    now += wb_stall;
    res.completeAt = now + cfg.l1HitLatency;

    const Cycles service = mem.l1Wb.nextServiceStart(now);

    // One tag probe serves the dispatch on the line's state and the
    // owned-write LRU promotion.
    const std::uint32_t l2_way = mem.l2.find(addr);
    const LineState st = l2_way < mem.l2.ways()
                             ? mem.l2.stateOfWay(addr, l2_way)
                             : LineState::Invalid;
    Cycles drained;
    if (st == LineState::Modified || st == LineState::Exclusive) {
        // Local write: silently upgrade Exclusive to Modified.  The
        // already-Modified case (the hot write path) needs no state
        // change, so the extra tag probe is skipped.
        mem.l2.promoteWay(addr, l2_way);
        if (st == LineState::Exclusive)
            setL2State(cpu, addr, LineState::Modified);
        drained = service + cfg.l2WriteLatency;
    } else if (isUpdateAddr(addr)) {
        // Firefly update protocol for this page.
        Cycles ready = service + cfg.l2WriteLatency;
        if (st == LineState::Invalid) {
            // Fetch the line first (sharers keep their copies).
            const Cycles arrive = busReadLine(cpu, l2line, ready, false);
            fillL2(cpu, l2line, LineState::Shared, arrive);
            ready = arrive;
        }
        if (sharedElsewhere(cpu, l2line)) {
            // Firefly sharers keep their copies, so the holder mask is
            // the same before and after the update snoop.
            const std::uint32_t rmask =
                numa != nullptr ? remoteHolderMask(cpu, l2line) : 0;
            snoopUpdate(cpu, l2line);
            setL2State(cpu, l2line, LineState::Shared);
            drained = scheduleL2WbEntry(cpu, mem, l2line, ready,
                                        cfg.updateOccupancy, BusTxn::Update,
                                        ctx.blockOpBody ? 8 : 4, rmask);
        } else {
            // No sharers: behave like an ordinary owned write.
            setL2State(cpu, l2line, LineState::Modified);
            drained = ready;
        }
    } else if (st == LineState::Shared) {
        // Invalidation-only transaction, then write locally.  The
        // holder mask must precede the snoop that kills the copies.
        const std::uint32_t rmask =
            numa != nullptr ? remoteHolderMask(cpu, l2line) : 0;
        snoopInvalidate(cpu, l2line);
        setL2State(cpu, addr, LineState::Modified);
        drained = scheduleL2WbEntry(cpu, mem, l2line,
                                    service + cfg.l2WriteLatency,
                                    cfg.invalOccupancy, BusTxn::Invalidate,
                                    0, rmask);
    } else {
        // Write miss: read-for-ownership, allocate Modified.  The
        // buffer slot frees once the bus phase ends; the returning
        // data overlaps with later drains (the secondary cache is
        // lockup-free).
        const Cycles slot_wait = mem.l2Wb.stallUntilSlot(service);
        const Cycles start =
            mem.l2Wb.nextServiceStart(service + slot_wait);
        const Cycles arrive = busReadLine(cpu, l2line, start, true);
        fillL2(cpu, l2line, LineState::Modified, arrive);
        drained = arrive - cfg.busMemLatency() + cfg.lineTransferOccupancy;
        mem.l2Wb.push(l2line, drained);
    }

    mem.l1Wb.push(line, drained);

    // Write-allocate primary cache: install the line so subsequent
    // reads of freshly written data hit (the fill itself happens in
    // the background and does not stall the processor).
    if (!mem.l1.contains(addr))
        fillL1(cpu, addr, ctx.blockOpBody);

    opEnd(MemOpKind::Write, cpu, addr);
    notifyAccess(MemOpKind::Write, cpu, addr, issued, ctx, res);
    return res;
}

void
MemorySystem::prefetch(CpuId cpu, Addr addr, Cycles now,
                       const AccessContext &ctx)
{
    opBegin(MemOpKind::Prefetch, cpu, addr);
    CpuMem &mem = cpus[cpu];
    const Addr line = l1Line(addr);
    const Addr l2line = l2Line(addr);

    if (mem.l1.contains(addr) ||
        (!mem.inFlight.empty() && mem.inFlight.count(line))) {
        // Already present or already being fetched: a trivial hit.
        AccessResult res;
        res.completeAt = now;
        notifyAccess(MemOpKind::Prefetch, cpu, addr, now, ctx, res);
        return;
    }

    // Prune completed fills; drop the prefetch when no outstanding-
    // miss register is free (lockup-free cache with finite MSHRs).
    for (auto it = mem.inFlight.begin(); it != mem.inFlight.end();) {
        if (it->second.readyAt <= now)
            it = mem.inFlight.erase(it);
        else
            ++it;
    }
    if (mem.inFlight.size() >= cfg.mshrCount) {
        AccessResult res;
        res.completeAt = now;
        notifyAccess(MemOpKind::Prefetch, cpu, addr, now, ctx, res,
                     /*dropped=*/true);
        return;
    }

    InFlightFill fill;
    fill.byPrefetch = true;
    fill.cause = classifyMiss(mem, line);

    if (mem.l2.contains(addr)) {
        fill.readyAt = now + cfg.l2HitLatency;
    } else {
        const Cycles detect = now + cfg.l2HitLatency;
        const Cycles arrive = busReadLine(cpu, l2line, detect, false);
        fillL2(cpu, l2line, readFillState(cpu, l2line), arrive);
        fill.readyAt = arrive;
    }

    fillL1(cpu, addr, ctx.blockOpBody);
    mem.inFlight.emplace(line, fill);
    opEnd(MemOpKind::Prefetch, cpu, addr);
    if (fan.wantsAccessEvents()) {
        AccessResult res;
        res.completeAt = now;
        res.l1Miss = true;
        res.cause = fill.cause;
        res.level = ServiceLevel::Memory;
        notifyAccess(MemOpKind::Prefetch, cpu, addr, now, ctx, res);
    }
}

AccessResult
MemorySystem::writeBypassLine(CpuId cpu, Addr addr, Cycles now,
                              const AccessContext &ctx)
{
    opBegin(MemOpKind::BypassWrite, cpu, addr);
    (void)ctx;
    CpuMem &mem = cpus[cpu];
    AccessResult res;
    const Addr l2line = l2Line(addr);

    // The bypass register feeds the L2-to-bus write buffer directly;
    // the processor stalls when that buffer is full.
    const Cycles slot_wait = mem.l2Wb.stallUntilSlot(now);
    res.stall = slot_wait;
    now += slot_wait;
    res.completeAt = now + cfg.l1HitLatency;

    // Stale copies elsewhere must die; the full-line write then goes
    // straight to memory.
    const std::uint32_t rmask =
        numa != nullptr ? remoteHolderMask(cpu, l2line) : 0;
    snoopInvalidate(cpu, l2line);
    const Cycles start = mem.l2Wb.nextServiceStart(now);
    if (numa == nullptr) {
        const Cycles grant =
            theBus.acquire(start, cfg.lineTransferOccupancy,
                           BusTxn::WriteBack, cfg.l2LineSize);
        mem.l2Wb.push(l2line, grant + cfg.lineTransferOccupancy);
    } else {
        const unsigned socket = cfg.socketOf(cpu);
        const Cycles grant = numa->socketBus[socket].acquire(
            start, cfg.lineTransferOccupancy, BusTxn::WriteBack,
            cfg.l2LineSize);
        mem.l2Wb.push(l2line,
                      numaWriteDone(socket, l2line, grant,
                                    cfg.lineTransferOccupancy,
                                    BusTxn::WriteBack, cfg.l2LineSize,
                                    rmask, /*snoop_broadcast=*/true));
    }

    // The destination line ends up uncached: future first reuses miss.
    for (std::uint32_t off = 0; off < cfg.l2LineSize; off += cfg.l1LineSize)
        bypassMarks.set(l2line + off, MarkTable::bypass);
    opEnd(MemOpKind::BypassWrite, cpu, addr);
    notifyAccess(MemOpKind::BypassWrite, cpu, addr, now - res.stall, ctx,
                 res, /*dropped=*/false, /*whole_line=*/true,
                 /*invalidated=*/true);
    return res;
}

AccessResult
MemorySystem::writeBypassWord(CpuId cpu, Addr addr, Cycles now,
                              const AccessContext &ctx, bool invalidate)
{
    opBegin(MemOpKind::BypassWrite, cpu, addr);
    (void)ctx;
    CpuMem &mem = cpus[cpu];
    AccessResult res;
    const Addr l2line = l2Line(addr);

    const Cycles slot_wait = mem.l2Wb.stallUntilSlot(now);
    res.stall = slot_wait;
    now += slot_wait;
    res.completeAt = now + cfg.l1HitLatency;

    const std::uint32_t rmask = numa != nullptr && invalidate
                                    ? remoteHolderMask(cpu, l2line)
                                    : 0;
    if (invalidate)
        snoopInvalidate(cpu, l2line);
    const Cycles start = mem.l2Wb.nextServiceStart(now);
    if (numa == nullptr) {
        const Cycles grant = theBus.acquire(start, cfg.wordWriteOccupancy,
                                            BusTxn::WriteBack, 4);
        mem.l2Wb.push(l2line, grant + cfg.wordWriteOccupancy);
    } else {
        const unsigned socket = cfg.socketOf(cpu);
        const Cycles grant = numa->socketBus[socket].acquire(
            start, cfg.wordWriteOccupancy, BusTxn::WriteBack, 4);
        mem.l2Wb.push(l2line,
                      numaWriteDone(socket, l2line, grant,
                                    cfg.wordWriteOccupancy,
                                    BusTxn::WriteBack, 4, rmask,
                                    /*snoop_broadcast=*/invalidate));
    }

    bypassMarks.set(l1Line(addr), MarkTable::bypass);
    opEnd(MemOpKind::BypassWrite, cpu, addr);
    notifyAccess(MemOpKind::BypassWrite, cpu, addr, now - res.stall, ctx,
                 res, /*dropped=*/false, /*whole_line=*/false, invalidate);
    return res;
}

void
MemorySystem::prefetchIntoBuffer(CpuId cpu, Addr addr, Cycles now)
{
    opBegin(MemOpKind::Prefetch, cpu, addr);
    CpuMem &mem = cpus[cpu];
    const Addr line = l1Line(addr);

    unsigned pending = 0;
    for (const auto &entry : mem.prefetchBuffer) {
        if (entry.lineAddr == line)
            return; // Already buffered.
        if (entry.readyAt > now)
            ++pending;
    }
    // The buffer's fetch engine sustains a few outstanding fills;
    // further prefetches are dropped (and show up as misses the
    // prefetch could not hide, as in the paper's Blk_ByPref).
    if (pending >= 4)
        return;

    if (mem.prefetchBuffer.size() >= cfg.blockPrefetchBufferLines)
        mem.prefetchBuffer.pop_front();

    BufferLine entry;
    entry.lineAddr = line;
    if (mem.l1.contains(addr)) {
        entry.readyAt = now + cfg.l1HitLatency;
    } else if (mem.l2.contains(addr)) {
        entry.readyAt = now + cfg.l2HitLatency;
    } else {
        // Fetch at primary-line granularity; occupancy scales with
        // the fraction of a secondary line moved.
        const Cycles occ = std::max<Cycles>(
            cfg.invalOccupancy,
            cfg.lineTransferOccupancy * cfg.l1LineSize / cfg.l2LineSize);
        if (numa == nullptr) {
            const Cycles grant = theBus.acquire(now, occ, BusTxn::LineFill,
                                                cfg.l1LineSize);
            entry.readyAt = grant + cfg.busMemLatency();
        } else {
            entry.readyAt =
                numaReadLine(cfg.socketOf(cpu), l2Line(addr), now, occ,
                             cfg.l1LineSize,
                             remoteHolderMask(cpu, l2Line(addr)));
        }
        // Snoop: a Modified owner must supply and demote.
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (c == cpu)
                continue;
            if (cpus[c].l2.state(l2Line(addr)) == LineState::Modified)
                setL2State(c, l2Line(addr), LineState::Shared);
        }
    }
    mem.prefetchBuffer.push_back(entry);
    opEnd(MemOpKind::Prefetch, cpu, addr);
    if (fan.wantsAccessEvents())
        fan.onBufferPrefetchFill(cpu, addr);
}

AccessResult
MemorySystem::readViaPrefetchBuffer(CpuId cpu, Addr addr, Cycles now,
                                    const AccessContext &ctx)
{
    opBegin(MemOpKind::Read, cpu, addr);
    CpuMem &mem = cpus[cpu];
    const Addr line = l1Line(addr);

    // Own caches first (a cache access is performed when the block
    // data is already resident) — without allocation.
    if (mem.l1.contains(addr)) {
        AccessResult res;
        res.completeAt = now + cfg.l1HitLatency;
        notifyAccess(MemOpKind::Read, cpu, addr, now, ctx, res,
                     /*dropped=*/false, /*whole_line=*/false,
                     /*invalidated=*/false, /*via_buffer=*/true);
        return res;
    }

    for (auto it = mem.prefetchBuffer.begin();
         it != mem.prefetchBuffer.end(); ++it) {
        if (it->lineAddr != line)
            continue;
        AccessResult res;
        if (it->readyAt > now) {
            // Prefetch not issued early enough: partial hiding.
            res.completeAt = it->readyAt;
            res.l1Miss = true;
            res.level = ServiceLevel::InFlight;
            res.cause = classifyMiss(mem, line);
            res.partiallyHidden = true;
            res.stall = res.completeAt - (now + cfg.l1HitLatency);
        } else {
            res.completeAt = now + cfg.l1HitLatency;
            res.level = ServiceLevel::PrefetchBuffer;
        }
        notifyAccess(MemOpKind::Read, cpu, addr, now, ctx, res,
                     /*dropped=*/false, /*whole_line=*/false,
                     /*invalidated=*/false, /*via_buffer=*/true);
        return res;
    }

    // Not buffered at all: fetch without allocating (read() marks
    // the line as a reuse candidate).
    AccessContext no_alloc = ctx;
    no_alloc.allocate = false;
    return read(cpu, addr, now, no_alloc);
}

void
MemorySystem::codeFill(CpuId cpu, Addr code_addr, std::uint32_t bytes)
{
    opBegin(MemOpKind::CodeFill, cpu, code_addr);
    // The secondary cache is unified: instruction fills occupy lines
    // and evict data.  The timing and bus cost of instruction misses
    // are modeled statistically (SimOptions::osImissCpi); here only
    // the capacity effect on data is applied.
    CpuMem &mem = cpus[cpu];
    const Addr end = alignUp(code_addr + bytes, cfg.l2LineSize);
    for (Addr a = alignDown(code_addr, cfg.l2LineSize); a < end;
         a += cfg.l2LineSize) {
        if (mem.l2.state(a) != LineState::Invalid)
            continue;
        // The fetch snoops like any bus read: a remote owner demotes
        // to Shared and the requester installs Shared when copies
        // exist elsewhere — two processors running the same code must
        // not both hold the line Exclusive.
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (c == cpu)
                continue;
            const LineState st = cpus[c].l2.state(a);
            if (st == LineState::Modified || st == LineState::Exclusive)
                setL2State(c, a, LineState::Shared);
        }
        installL2(cpu, a, readFillState(cpu, a));
    }
    opEnd(MemOpKind::CodeFill, cpu, code_addr);
    if (fan.wantsAccessEvents())
        fan.onCodeFill(cpu, code_addr, bytes);
}

Cycles
MemorySystem::instructionFetch(CpuId cpu, Addr code_addr,
                               std::uint32_t bytes, Cycles now)
{
    opBegin(MemOpKind::InstructionFetch, cpu, code_addr);
    CpuMem &mem = cpus[cpu];
    Cycles stall = 0;
    const Addr end = alignUp(code_addr + bytes, cfg.iCacheLineSize);
    for (Addr a = alignDown(code_addr, cfg.iCacheLineSize); a < end;
         a += cfg.iCacheLineSize) {
        if (mem.icache.contains(a))
            continue;
        mem.icache.fill(a);
        const Addr l2line = l2Line(a);
        if (mem.l2.state(l2line) != LineState::Invalid) {
            stall += cfg.l2HitLatency;
            continue;
        }
        // Fetch the code line over the bus into the unified L2.  The
        // read snoops: remote owners demote and the fill state obeys
        // the protocol (Shared when copies exist elsewhere).
        if (numa == nullptr) {
            const Cycles grant =
                theBus.acquire(now + stall + cfg.l2HitLatency,
                               cfg.lineTransferOccupancy,
                               BusTxn::LineFill, cfg.l2LineSize);
            stall = grant + cfg.busMemLatency() - now;
        } else {
            const Cycles arrive = numaReadLine(
                cfg.socketOf(cpu), l2line,
                now + stall + cfg.l2HitLatency,
                cfg.lineTransferOccupancy, cfg.l2LineSize,
                remoteHolderMask(cpu, l2line));
            stall = arrive - now;
        }
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (c == cpu)
                continue;
            const LineState st = cpus[c].l2.state(l2line);
            if (st == LineState::Modified || st == LineState::Exclusive)
                setL2State(c, l2line, LineState::Shared);
        }
        fillL2(cpu, l2line, readFillState(cpu, l2line), now + stall);
    }
    opEnd(MemOpKind::InstructionFetch, cpu, code_addr);
    return stall;
}

Cycles
MemorySystem::fence(CpuId cpu, Cycles now)
{
    CpuMem &mem = cpus[cpu];
    Cycles done = now;
    if (mem.l1Wb.lastCompletion() > done)
        done = mem.l1Wb.lastCompletion();
    if (mem.l2Wb.lastCompletion() > done)
        done = mem.l2Wb.lastCompletion();
    mem.l1Wb.prune(done);
    mem.l2Wb.prune(done);
    return done;
}

Cycles
MemorySystem::dmaBlockOp(CpuId cpu, const BlockOp &op, Cycles now)
{
    opBegin(MemOpKind::Dma, cpu, op.dst);
    if (fan.active())
        fan.onDmaBegin(cpu, op);
    CpuMem &mem = cpus[cpu];
    const Addr src_begin = op.isCopy() ? l2Line(op.src) : invalidAddr;
    const Addr dst_begin = l2Line(op.dst);
    const Addr dst_end = alignUp(op.dst + op.size, cfg.l2LineSize);

    // Sockets the transfer must reach beyond the originator's: any
    // remote holder of an involved line, and any remote home of the
    // moved data.  Captured before the snoops below mutate state.
    std::uint32_t rmask = 0;
    if (numa != nullptr) {
        const unsigned socket = cfg.socketOf(cpu);
        const auto fold = [&](Addr a) {
            const unsigned home = cfg.homeSocketOf(a);
            if (home != socket)
                rmask |= 1u << home;
            for (CpuId c = 0; c < cfg.numCpus; ++c) {
                const unsigned s = cfg.socketOf(c);
                if (s != socket &&
                    cpus[c].l2.state(a) != LineState::Invalid)
                    rmask |= 1u << s;
            }
        };
        for (Addr a = dst_begin; a < dst_end; a += cfg.l2LineSize)
            fold(a);
        if (op.isCopy()) {
            const Addr src_end = alignUp(op.src + op.size, cfg.l2LineSize);
            for (Addr a = src_begin; a < src_end; a += cfg.l2LineSize)
                fold(a);
        }
    }

    // A copy moves each 8 bytes across the bus twice (source read,
    // destination write); a zero only writes, at twice the rate.
    const Cycles per8 =
        op.isCopy() ? cfg.dmaPer8Bytes : (cfg.dmaPer8Bytes + 1) / 2;
    Cycles occupancy = cfg.dmaStartup + ((op.size + 7) / 8) * per8;

    // Dirty source lines slow the transfer: their owners supply them.
    if (op.isCopy()) {
        const Addr src_end = alignUp(op.src + op.size, cfg.l2LineSize);
        for (Addr a = src_begin; a < src_end; a += cfg.l2LineSize) {
            for (CpuId c = 0; c < cfg.numCpus; ++c) {
                if (cpus[c].l2.state(a) == LineState::Modified) {
                    occupancy += cfg.dmaDirtySupplyPenalty;
                    setL2State(c, a, LineState::Shared);
                    break;
                }
            }
        }
    }

    Cycles done;
    if (numa == nullptr) {
        const Cycles grant = theBus.acquire(now, occupancy, BusTxn::Dma,
                                            op.size);
        done = grant + occupancy;
    } else {
        // The engine holds its socket's bus for the whole transfer;
        // a cross-socket operation holds the link and every involved
        // remote bus too (DMA is not split-transaction).
        const unsigned socket = cfg.socketOf(cpu);
        const Cycles grant = numa->socketBus[socket].acquire(
            now, occupancy, BusTxn::Dma, op.size);
        done = grant + occupancy;
        if (rmask != 0) {
            const Cycles lg = numa->link.acquire(grant, occupancy,
                                                 BusTxn::Dma, op.size);
            for (unsigned r = 0; r < cfg.numSockets; ++r) {
                if (r == socket || ((rmask >> r) & 1u) == 0)
                    continue;
                const Cycles rg = numa->socketBus[r].acquire(
                    lg, occupancy, BusTxn::Dma, 0);
                done = std::max(done, rg + occupancy);
            }
        }
    }

    // Destination lines: resident copies anywhere are updated in
    // place (the update propagates to the primary caches, whose
    // copies simply stay valid); unresident lines stay out of the
    // caches and become reuse candidates.
    for (Addr a = dst_begin; a < dst_end; a += cfg.l2LineSize) {
        bool cached_anywhere = false;
        for (CpuId c = 0; c < cfg.numCpus; ++c) {
            if (cpus[c].l2.state(a) != LineState::Invalid) {
                cached_anywhere = true;
                setL2State(c, a, LineState::Shared);
                for (std::uint32_t off = 0; off < cfg.l2LineSize;
                     off += cfg.l1LineSize) {
                    // Updated data: clear any stale coherence marks.
                    cpus[c].marks.clear(a + off, MarkTable::coherence);
                }
            }
        }
        for (std::uint32_t off = 0; off < cfg.l2LineSize;
             off += cfg.l1LineSize) {
            if (cached_anywhere)
                bypassMarks.clear(a + off, MarkTable::bypass);
            else
                bypassMarks.set(a + off, MarkTable::bypass);
        }
    }

    // Source lines the originator does not hold would have been
    // fetched into its caches by a processor-driven copy; with DMA
    // they stay out, so their first future touch is a reuse.
    if (op.isCopy()) {
        const Addr src_end = alignUp(op.src + op.size, cfg.l2LineSize);
        for (Addr a = src_begin; a < src_end; a += cfg.l2LineSize) {
            if (mem.l2.state(a) != LineState::Invalid)
                continue;
            for (std::uint32_t off = 0; off < cfg.l2LineSize;
                 off += cfg.l1LineSize)
                bypassMarks.set(a + off, MarkTable::bypass);
        }
    }

    opEnd(MemOpKind::Dma, cpu, op.dst);
    if (fan.wantsAccessEvents())
        fan.onDma(cpu, op);
    return done;
}

namespace
{

/**
 * Write one mark class as a sorted address list — the same bytes the
 * pre-MarkTable unordered_set serialization produced.
 */
void
putMarkClass(binio::BinaryWriter &w, const MarkTable &t, std::uint8_t flag)
{
    const std::vector<Addr> sorted = t.snapshot(flag);
    w.put(std::uint64_t(sorted.size()));
    for (const Addr a : sorted)
        w.put(a);
}

bool
getMarkClass(binio::BinaryReader &r, MarkTable &t, std::uint8_t flag)
{
    std::uint64_t n = 0;
    if (!r.get(n) || n > (1ull << 32))
        return false;
    t.clearClass(flag);
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = 0;
        if (!r.get(a))
            return false;
        t.set(a, flag);
    }
    return true;
}

} // namespace

void
MemorySystem::saveState(binio::BinaryWriter &w) const
{
    w.put(std::uint32_t(cpus.size()));
    for (const CpuMem &mem : cpus) {
        mem.l1.saveState(w);
        mem.icache.saveState(w);
        mem.l2.saveState(w);
        mem.l1Wb.saveState(w);
        mem.l2Wb.saveState(w);

        std::vector<std::pair<Addr, InFlightFill>> fills(
            mem.inFlight.begin(), mem.inFlight.end());
        std::sort(fills.begin(), fills.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        w.put(std::uint64_t(fills.size()));
        for (const auto &[line, fill] : fills) {
            w.put(line);
            w.put(fill.readyAt);
            w.put(std::uint8_t(fill.cause));
            w.put(std::uint8_t(fill.byPrefetch));
        }

        putMarkClass(w, mem.marks, MarkTable::coherence);
        putMarkClass(w, mem.marks, MarkTable::blockEvict);

        w.put(std::uint64_t(mem.prefetchBuffer.size()));
        for (const BufferLine &line : mem.prefetchBuffer) {
            w.put(line.lineAddr);
            w.put(line.readyAt);
        }
    }
    putMarkClass(w, bypassMarks, MarkTable::bypass);
    theBus.saveState(w);
    // The flat machine's byte format is frozen (golden snapshots);
    // the NUMA section exists only when the interconnect does.
    if (numa != nullptr) {
        for (const Bus &b : numa->socketBus)
            b.saveState(w);
        numa->link.saveState(w);
        w.put(numa->counters.snoopsFiltered);
        w.put(numa->counters.snoopsForwarded);
        w.put(numa->counters.localHomeReads);
        w.put(numa->counters.remoteHomeReads);
    }
}

bool
MemorySystem::loadState(binio::BinaryReader &r, std::string *error)
{
    const auto fail = [error](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    std::uint32_t n = 0;
    if (!r.get(n) || n != cpus.size())
        return fail("cpu count mismatch");
    for (CpuMem &mem : cpus) {
        if (!mem.l1.loadState(r))
            return fail("bad primary-cache state");
        if (!mem.icache.loadState(r))
            return fail("bad instruction-cache state");
        if (!mem.l2.loadState(r))
            return fail("bad secondary-cache state");
        if (!mem.l1Wb.loadState(r))
            return fail("bad primary write-buffer state");
        if (!mem.l2Wb.loadState(r))
            return fail("bad secondary write-buffer state");

        std::uint64_t count = 0;
        if (!r.get(count) || count > (1u << 24))
            return fail("bad in-flight fill count");
        mem.inFlight.clear();
        for (std::uint64_t i = 0; i < count; ++i) {
            Addr line = 0;
            InFlightFill fill;
            std::uint8_t cause = 0;
            std::uint8_t by_prefetch = 0;
            if (!r.get(line) || !r.get(fill.readyAt) || !r.get(cause) ||
                !r.get(by_prefetch) ||
                cause > std::uint8_t(MissCause::Plain))
                return fail("bad in-flight fill entry");
            fill.cause = MissCause(cause);
            fill.byPrefetch = by_prefetch != 0;
            mem.inFlight.emplace(line, fill);
        }

        if (!getMarkClass(r, mem.marks, MarkTable::coherence))
            return fail("bad coherence-invalidated set");
        if (!getMarkClass(r, mem.marks, MarkTable::blockEvict))
            return fail("bad block-op-evicted set");

        if (!r.get(count) || count > cfg.blockPrefetchBufferLines)
            return fail("bad prefetch-buffer count");
        mem.prefetchBuffer.clear();
        for (std::uint64_t i = 0; i < count; ++i) {
            BufferLine line;
            if (!r.get(line.lineAddr) || !r.get(line.readyAt))
                return fail("bad prefetch-buffer entry");
            mem.prefetchBuffer.push_back(line);
        }
    }
    if (!getMarkClass(r, bypassMarks, MarkTable::bypass))
        return fail("bad bypassed-lines set");
    if (!theBus.loadState(r))
        return fail("bad bus state");
    if (numa != nullptr) {
        for (Bus &b : numa->socketBus)
            if (!b.loadState(r))
                return fail("bad socket-bus state");
        if (!numa->link.loadState(r))
            return fail("bad inter-socket link state");
        if (!r.get(numa->counters.snoopsFiltered) ||
            !r.get(numa->counters.snoopsForwarded) ||
            !r.get(numa->counters.localHomeReads) ||
            !r.get(numa->counters.remoteHomeReads))
            return fail("bad numa counters");
    }
    return true;
}

} // namespace oscache
