/**
 * @file
 * Flat miss-classification mark table.
 *
 * The replay engine classifies every primary-cache miss by consulting
 * small per-line mark sets: "this line was invalidated by coherence",
 * "this line was displaced by a block operation", "this line was
 * bypassed".  Three separate std::unordered_set<Addr> instances made
 * every miss pay up to three node-based hash walks and every fill up
 * to three erases.  MarkTable replaces them with one open-addressing
 * table mapping a line address to a small flag set, so the common
 * classify-then-clear sequence costs a single linear probe over a
 * contiguous array.
 *
 * Each slot is a single 64-bit word holding the line address shifted
 * up by the flag width with the flags packed into the freed low bits
 * — a probe touches exactly one cache line and reads both mark
 * classes at once.  A clear that drops a line's last flag removes
 * the key outright via backward-shift deletion, so the table never
 * accumulates dead entries and its load factor tracks the live mark
 * population exactly.  Per-flag population counters make the "is
 * this whole mark class empty" test O(1), which is what keeps
 * schemes that never bypass from ever probing for bypass marks.
 */

#ifndef OSCACHE_MEM_MARKS_HH
#define OSCACHE_MEM_MARKS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace oscache
{

/**
 * Open-addressing line-address -> mark-flags table.
 */
class MarkTable
{
  public:
    /** @name Mark classes (bit flags) @{ */
    static constexpr std::uint8_t coherence = 1; ///< Invalidated by snoop.
    static constexpr std::uint8_t blockEvict = 2; ///< Displaced by block op.
    static constexpr std::uint8_t bypass = 4;     ///< Fetched w/o allocate.
    /** @} */

    MarkTable() { rebuild(initialSlots); }

    /** Flags recorded for @p line (0 when unmarked). */
    std::uint8_t
    flagsAt(Addr line) const
    {
        const std::uint64_t key = packedKey(line);
        std::size_t i = slotFor(line);
        while (true) {
            const std::uint64_t v = slots[i];
            if ((v & ~flagMask) == key)
                return std::uint8_t(v & flagMask);
            if (v == emptySlot)
                return 0;
            i = (i + 1) & mask;
        }
    }

    bool test(Addr line, std::uint8_t flag) const
    {
        return (flagsAt(line) & flag) != 0;
    }

    /** Record @p flag for @p line. */
    void
    set(Addr line, std::uint8_t flag)
    {
        std::uint64_t &v = locate(line);
        if ((v & flag) == 0) {
            v |= flag;
            bump(flag, +1);
        }
    }

    /** Drop @p flag from @p line (no-op when not set). */
    void
    clear(Addr line, std::uint8_t flag)
    {
        clearAll(line, flag);
    }

    /** Drop every flag in @p flag_mask from @p line in one probe. */
    void
    clearAll(Addr line, std::uint8_t flag_mask)
    {
        const std::uint64_t key = packedKey(line);
        std::size_t i = slotFor(line);
        while (true) {
            std::uint64_t &v = slots[i];
            if ((v & ~flagMask) == key) {
                const std::uint8_t dropped =
                    std::uint8_t(v & flag_mask & flagMask);
                if (dropped != 0) {
                    v &= ~std::uint64_t(flag_mask & flagMask);
                    for (std::uint8_t f = 1; f <= bypass; f <<= 1)
                        if ((dropped & f) != 0)
                            bump(f, -1);
                    if ((v & flagMask) == 0)
                        removeSlot(i);
                }
                return;
            }
            if (v == emptySlot)
                return;
            i = (i + 1) & mask;
        }
    }

    /** Number of lines currently carrying @p flag. */
    std::size_t
    population(std::uint8_t flag) const
    {
        return counts[countIndex(flag)];
    }

    bool any(std::uint8_t flag) const { return population(flag) != 0; }

    /** Sorted lines carrying @p flag (deterministic serialization). */
    std::vector<Addr>
    snapshot(std::uint8_t flag) const
    {
        std::vector<Addr> lines;
        lines.reserve(population(flag));
        for (const std::uint64_t v : slots)
            if (v != emptySlot && (v & flag) != 0)
                lines.push_back(Addr(v >> flagBits));
        std::sort(lines.begin(), lines.end());
        return lines;
    }

    /** Drop every mark of @p flag (used when restoring state). */
    void
    clearClass(std::uint8_t flag)
    {
        if (!any(flag))
            return;
        // Rebuild from the survivors: stripping the flag in place
        // would leave flag-free keys resident.
        std::vector<std::uint64_t> old = std::move(slots);
        rebuild(old.size());
        counts[countIndex(flag)] = 0;
        for (const std::uint64_t v : old) {
            if (v == emptySlot)
                continue;
            const std::uint64_t rest = v & ~std::uint64_t(flag);
            if ((rest & flagMask) == 0)
                continue;
            std::size_t i = slotFor(Addr(v >> flagBits));
            while (slots[i] != emptySlot)
                i = (i + 1) & mask;
            slots[i] = rest;
            ++used;
        }
    }

  private:
    /**
     * Flag bits live in the low bits of the packed slot word; the
     * line address occupies the rest.  Simulated addresses stay far
     * below 2^61, so the shift cannot overflow.
     */
    static constexpr std::uint64_t flagBits = 3;
    static constexpr std::uint64_t flagMask = (1u << flagBits) - 1;
    /** All-ones: packedKey(line) can never produce it. */
    static constexpr std::uint64_t emptySlot = ~std::uint64_t{0};
    static constexpr std::size_t initialSlots = 1024;

    static constexpr std::uint64_t
    packedKey(Addr line)
    {
        return std::uint64_t(line) << flagBits;
    }

    static constexpr std::size_t
    countIndex(std::uint8_t flag)
    {
        return flag == coherence ? 0 : flag == blockEvict ? 1 : 2;
    }

    std::size_t
    slotFor(Addr line) const
    {
        // Fibonacci multiplicative spread of the line-address bits.
        return std::size_t(
                   (line * 0x9E3779B97F4A7C15ull) >> 32) & mask;
    }

    void
    bump(std::uint8_t flag, int delta)
    {
        counts[countIndex(flag)] =
            std::size_t(std::ptrdiff_t(counts[countIndex(flag)]) + delta);
    }

    /** Find @p line's slot, claiming an empty one when absent. */
    std::uint64_t &
    locate(Addr line)
    {
        const std::uint64_t key = packedKey(line);
        std::size_t i = slotFor(line);
        while (true) {
            std::uint64_t &v = slots[i];
            if ((v & ~flagMask) == key)
                return v;
            if (v == emptySlot) {
                if (used + 1 > (slots.size() * 7) / 10) {
                    grow();
                    return locate(line);
                }
                v = key;
                ++used;
                return v;
            }
            i = (i + 1) & mask;
        }
    }

    /**
     * Unlink slot @p i and backward-shift the probe chain behind it
     * so every remaining key stays reachable from its home slot.
     */
    void
    removeSlot(std::size_t i)
    {
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask;
            const std::uint64_t v = slots[j];
            if (v == emptySlot)
                break;
            const std::size_t home = slotFor(Addr(v >> flagBits));
            // Move v into the hole unless its home lies strictly
            // between the hole and its current slot (then the hole
            // does not break its probe chain).
            if (((j - home) & mask) >= ((j - hole) & mask)) {
                slots[hole] = v;
                hole = j;
            }
        }
        slots[hole] = emptySlot;
        --used;
    }

    /** Double the table (every resident entry is live). */
    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots);
        rebuild(old.size() * 2);
        for (const std::uint64_t v : old) {
            if (v == emptySlot)
                continue;
            std::size_t i = slotFor(Addr(v >> flagBits));
            while (slots[i] != emptySlot)
                i = (i + 1) & mask;
            slots[i] = v;
            ++used;
        }
    }

    void
    rebuild(std::size_t n)
    {
        slots.assign(n, emptySlot);
        mask = n - 1;
        used = 0;
    }

    std::vector<std::uint64_t> slots;
    std::size_t mask = 0;
    std::size_t used = 0;
    /** Live marks per class: [coherence, blockEvict, bypass]. */
    std::size_t counts[3] = {0, 0, 0};
};

} // namespace oscache

#endif // OSCACHE_MEM_MARKS_HH
