/**
 * @file
 * Split-transaction shared bus with contention.
 *
 * The bus is modeled as a single serially-reusable resource: a
 * transaction issued at time t is granted at max(t, free time) and
 * occupies the bus for its occupancy; requests are therefore serviced
 * in issue order (FIFO), which approximates the round-robin
 * arbitration of real buses well for trace-driven simulation.
 * Traffic statistics are kept per transaction kind so experiments can
 * report, e.g., the extra traffic of the selective-update protocol.
 */

#ifndef OSCACHE_MEM_BUS_HH
#define OSCACHE_MEM_BUS_HH

#include <array>
#include <cstdint>

#include "common/binio.hh"
#include "common/types.hh"

namespace oscache
{

/** Kinds of bus transactions, for traffic accounting. */
enum class BusTxn : std::uint8_t
{
    LineFill,     ///< Read (or read-exclusive) line transfer.
    WriteBack,    ///< Dirty-line writeback.
    Invalidate,   ///< Address-only invalidation.
    Update,       ///< Firefly word-update broadcast.
    Dma,          ///< DMA-like block-operation transfer.
    NumKinds,
};

/**
 * Passive probe notified of every bus grant.  Attached by the
 * observability hub for occupancy time series and transaction-level
 * timeline events; costs one null-pointer test per acquire when off.
 */
struct BusProbe
{
    virtual ~BusProbe() = default;

    /**
     * A transaction of @p kind was granted at @p grant (after waiting
     * since @p requested) and occupies the bus for @p occupancy.
     */
    virtual void onBusAcquire(BusTxn kind, Cycles requested, Cycles grant,
                              Cycles occupancy, std::uint32_t bytes) = 0;
};

/**
 * The shared split-transaction bus.
 */
class Bus
{
  public:
    /**
     * Acquire the bus at or after @p when for @p occupancy cycles.
     *
     * @param when      Earliest cycle the requester can use the bus.
     * @param occupancy Cycles the transaction occupies the bus.
     * @param kind      Transaction kind, for traffic statistics.
     * @param bytes     Payload bytes moved, for traffic statistics.
     * @return The grant cycle (>= when).
     */
    Cycles
    acquire(Cycles when, Cycles occupancy, BusTxn kind, std::uint32_t bytes)
    {
        const Cycles grant = when > freeAt ? when : freeAt;
        freeAt = grant + occupancy;
        busyCycles += occupancy;
        auto idx = static_cast<std::size_t>(kind);
        txnCount[idx] += 1;
        txnBytes[idx] += bytes;
        txnCycles[idx] += occupancy;
        if (probe != nullptr)
            probe->onBusAcquire(kind, when, grant, occupancy, bytes);
        return grant;
    }

    /** Attach (or, with nullptr, detach) the observability probe. */
    void setProbe(BusProbe *p) { probe = p; }

    /** Cycle at which the bus next becomes free. */
    Cycles nextFree() const { return freeAt; }

    /** Total cycles the bus has been occupied. */
    Cycles totalBusyCycles() const { return busyCycles; }

    /** Number of transactions of @p kind. */
    std::uint64_t
    transactions(BusTxn kind) const
    {
        return txnCount[static_cast<std::size_t>(kind)];
    }

    /** Payload bytes moved by transactions of @p kind. */
    std::uint64_t
    bytes(BusTxn kind) const
    {
        return txnBytes[static_cast<std::size_t>(kind)];
    }

    /** Bus cycles consumed by transactions of @p kind. */
    std::uint64_t
    cycles(BusTxn kind) const
    {
        return txnCycles[static_cast<std::size_t>(kind)];
    }

    /** Total transactions of all kinds. */
    std::uint64_t
    totalTransactions() const
    {
        std::uint64_t n = 0;
        for (auto c : txnCount)
            n += c;
        return n;
    }

    /** Total payload bytes of all kinds. */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t n = 0;
        for (auto b : txnBytes)
            n += b;
        return n;
    }

    /** Serialize timing and traffic state (the probe is not state). */
    void
    saveState(binio::BinaryWriter &w) const
    {
        w.put(freeAt);
        w.put(busyCycles);
        for (std::size_t i = 0; i < numKinds; ++i) {
            w.put(txnCount[i]);
            w.put(txnBytes[i]);
            w.put(txnCycles[i]);
        }
    }

    /** Inverse of saveState(); false on truncation. */
    bool
    loadState(binio::BinaryReader &r)
    {
        if (!r.get(freeAt) || !r.get(busyCycles))
            return false;
        for (std::size_t i = 0; i < numKinds; ++i)
            if (!r.get(txnCount[i]) || !r.get(txnBytes[i]) ||
                !r.get(txnCycles[i]))
                return false;
        return true;
    }

  private:
    Cycles freeAt = 0;
    Cycles busyCycles = 0;
    BusProbe *probe = nullptr;
    static constexpr std::size_t numKinds =
        static_cast<std::size_t>(BusTxn::NumKinds);
    std::array<std::uint64_t, numKinds> txnCount{};
    std::array<std::uint64_t, numKinds> txnBytes{};
    std::array<std::uint64_t, numKinds> txnCycles{};
};

} // namespace oscache

#endif // OSCACHE_MEM_BUS_HH
