/**
 * @file
 * Request/response types of the memory-system API.
 */

#ifndef OSCACHE_MEM_ACCESS_HH
#define OSCACHE_MEM_ACCESS_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/record.hh"

namespace oscache
{

/** Where a read was ultimately serviced. */
enum class ServiceLevel : std::uint8_t
{
    L1,            ///< Primary-cache hit.
    PrefetchBuffer,///< Hit in the Blk_ByPref source prefetch buffer.
    InFlight,      ///< Merged with an outstanding (prefetch) fill.
    L2,            ///< Secondary-cache hit.
    Memory,        ///< Bus/memory (or cache-to-cache) transfer.
};

/** Cause classification of a primary-cache read miss. */
enum class MissCause : std::uint8_t
{
    None,         ///< Not a miss.
    Coherence,    ///< Line was invalidated by another processor.
    Displacement, ///< Line was last evicted by a block-operation fill.
    Reuse,        ///< Line was last touched by a cache-bypassed block op.
    Plain,        ///< Cold or conflict miss.
};

/** Per-access context supplied by the issuing processor model. */
struct AccessContext
{
    /** Issued by operating-system code. */
    bool os = false;
    /** Part of the word-by-word body of a block operation. */
    bool blockOpBody = false;
    /** Allocate into the caches on miss (false for bypass schemes). */
    bool allocate = true;
    /** Data-structure category of the referenced address. */
    DataCategory category = DataCategory::User;
    /** Issuing basic block. */
    BasicBlockId bb = invalidBasicBlock;
};

/** Result of a read, write, or prefetch. */
struct AccessResult
{
    /** Cycle at which the processor may proceed. */
    Cycles completeAt = 0;
    /** True iff this was a primary-cache read miss. */
    bool l1Miss = false;
    /** Where the data came from. */
    ServiceLevel level = ServiceLevel::L1;
    /** Why the primary cache missed. */
    MissCause cause = MissCause::None;
    /**
     * True when the miss latency was partially hidden by an earlier
     * prefetch (the stall is charged to the paper's "Pref" bucket).
     */
    bool partiallyHidden = false;
    /** Cycles the processor stalled beyond the 1-cycle issue slot. */
    Cycles stall = 0;
};

} // namespace oscache

#endif // OSCACHE_MEM_ACCESS_HH
