/**
 * @file
 * Single-allocation bump arena for per-run simulation state.
 *
 * The memory system's hot per-access state — every cache's tag bank,
 * the L2 MESI state bank, and both write buffers' entry rings — is
 * sized once per run by the MachineConfig and never grows.  Carving
 * all of it out of one contiguous allocation keeps the banks of all
 * processors adjacent (one or two TLB pages for the whole machine
 * model instead of a dozen scattered vector allocations) and makes
 * the steady-state replay loop allocation-free.
 *
 * The arena is deliberately minimal: reserve once, carve aligned
 * typed spans, no individual free.  Spans are valid for the arena's
 * lifetime; the owning object (MemorySystem) declares the arena
 * before the members that carve from it.
 */

#ifndef OSCACHE_MEM_ARENA_HH
#define OSCACHE_MEM_ARENA_HH

#include <cstddef>
#include <cstring>
#include <memory>

#include "common/log.hh"

namespace oscache
{

/**
 * Bump allocator over one up-front allocation.
 */
class SimArena
{
  public:
    SimArena() = default;

    SimArena(const SimArena &) = delete;
    SimArena &operator=(const SimArena &) = delete;
    SimArena(SimArena &&) = default;
    SimArena &operator=(SimArena &&) = default;

    /** Alignment of every carved span. */
    static constexpr std::size_t alignment = 16;

    /** Bytes @p count objects of @p elem_size cost, carve-aligned. */
    static constexpr std::size_t
    spanBytes(std::size_t count, std::size_t elem_size)
    {
        return (count * elem_size + alignment - 1) & ~(alignment - 1);
    }

    /** Make @p bytes available; discards any previous reservation. */
    void
    reserve(std::size_t bytes)
    {
        storage = std::make_unique<std::byte[]>(bytes);
        std::memset(storage.get(), 0, bytes);
        capacity = bytes;
        used = 0;
    }

    /**
     * Carve a zero-initialized span of @p count objects of T.  The
     * arena never grows: exceeding the reservation is a sizing bug
     * in the caller and panics.
     */
    template <typename T>
    T *
    allocate(std::size_t count)
    {
        static_assert(alignof(T) <= alignment,
                      "SimArena only hands out 16-byte-aligned spans");
        const std::size_t bytes = spanBytes(count, sizeof(T));
        if (used + bytes > capacity)
            panic("SimArena: reservation exhausted (", used, " + ", bytes,
                  " > ", capacity, ")");
        T *span = reinterpret_cast<T *>(storage.get() + used);
        used += bytes;
        return span;
    }

    std::size_t reserved() const { return capacity; }
    std::size_t consumed() const { return used; }

  private:
    std::unique_ptr<std::byte[]> storage;
    std::size_t capacity = 0;
    std::size_t used = 0;
};

} // namespace oscache

#endif // OSCACHE_MEM_ARENA_HH
