/**
 * @file
 * Set-associative cache tag arrays.
 *
 * Two concrete flavours are provided:
 *
 *  - L1Cache: the write-through, write-allocate primary data cache
 *    (also reused for the primary instruction cache).  Lines are
 *    merely valid or invalid — data is always clean; the L2 and
 *    memory are updated through the write buffer.
 *
 *  - L2Cache: the write-back secondary cache holding Illinois/MESI
 *    line states.
 *
 * Both are pure tag/state models, as usual for trace-driven
 * simulation.  The paper's machine is direct-mapped throughout
 * (ways = 1, the default); higher associativity with LRU replacement
 * is supported for the conflict-miss ablations.
 */

#ifndef OSCACHE_MEM_CACHE_HH
#define OSCACHE_MEM_CACHE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/binio.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace oscache
{

/** Illinois (MESI) line states for the secondary cache. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< Clean and only copy (Illinois' "valid-exclusive").
    Modified,
};

namespace detail
{

/**
 * Shared guts of the two cache flavours: an N-way set-associative
 * tag array with LRU replacement.  Way 0 of a set is the MRU
 * position; fills and touches promote to it.
 */
class SetAssocTags
{
  public:
    SetAssocTags(std::uint32_t size, std::uint32_t line_size,
                 std::uint32_t ways)
        : lineSize(line_size), numWays(ways),
          numSets(size / (line_size * ways)), indexMask(numSets - 1),
          lineShift(floorLog2(line_size)),
          tags(std::size_t{numSets} * ways, invalidAddr)
    {
        if (!isPowerOfTwo(size) || !isPowerOfTwo(line_size) ||
            !isPowerOfTwo(ways) || numSets == 0 ||
            !isPowerOfTwo(numSets))
            panic("cache: size, line size, and ways must be powers of "
                  "two with at least one set");
    }

    Addr lineAddr(Addr addr) const { return addr & ~(Addr{lineSize} - 1); }

    /** Way holding @p addr, or numWays when absent. */
    std::uint32_t
    find(Addr addr) const
    {
        const Addr line = lineAddr(addr);
        const std::size_t base = setBase(addr);
        for (std::uint32_t w = 0; w < numWays; ++w)
            if (tags[base + w] == line)
                return w;
        return numWays;
    }

    bool contains(Addr addr) const { return find(addr) < numWays; }

    /** Promote @p addr's way to MRU.  @return true iff present. */
    bool
    touch(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way >= numWays)
            return false;
        promote(setBase(addr), way);
        return true;
    }

    /**
     * Install @p addr's line at the MRU position.
     * @return The evicted LRU victim's line address, or invalidAddr.
     */
    Addr
    insert(Addr addr)
    {
        const Addr line = lineAddr(addr);
        const std::size_t base = setBase(addr);
        std::uint32_t way = find(addr);
        Addr victim = invalidAddr;
        if (way >= numWays) {
            // Prefer an invalid way; otherwise evict the LRU.
            way = numWays - 1;
            for (std::uint32_t w = 0; w < numWays; ++w)
                if (tags[base + w] == invalidAddr) {
                    way = w;
                    break;
                }
            if (tags[base + way] != invalidAddr)
                victim = tags[base + way];
            tags[base + way] = line;
        }
        promote(base, way);
        return victim;
    }

    /**
     * The way insert() would evict for @p addr when the line is
     * absent: the first invalid way if any, else the LRU way.
     * @return {victim line address or invalidAddr, way index}.
     */
    std::pair<Addr, std::uint32_t>
    peekVictim(Addr addr) const
    {
        const std::size_t base = setBase(addr);
        for (std::uint32_t w = 0; w < numWays; ++w)
            if (tags[base + w] == invalidAddr)
                return {invalidAddr, w};
        return {tags[base + numWays - 1], numWays - 1};
    }

    /** Remove @p addr's line.  @return the way it held, or numWays. */
    std::uint32_t
    remove(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way < numWays)
            tags[setBase(addr) + way] = invalidAddr;
        return way;
    }

    void
    clear()
    {
        tags.assign(tags.size(), invalidAddr);
    }

    std::uint32_t getLineSize() const { return lineSize; }
    std::uint32_t sets() const { return numSets; }
    std::uint32_t ways() const { return numWays; }

    /** Line addresses of every resident line (audit walks). */
    std::vector<Addr>
    residentLines() const
    {
        std::vector<Addr> lines;
        for (const Addr tag : tags)
            if (tag != invalidAddr)
                lines.push_back(tag);
        return lines;
    }

    /** Index of the (set, way) slot, for side-car state arrays. */
    std::size_t
    slot(Addr addr, std::uint32_t way) const
    {
        return setBase(addr) + way;
    }

    /** Serialize the tag array (live-points checkpointing). */
    void
    saveState(binio::BinaryWriter &w) const
    {
        w.put(std::uint64_t(tags.size()));
        for (const Addr tag : tags)
            w.put(tag);
    }

    /**
     * Inverse of saveState(); false on truncation or when the stored
     * geometry does not match this cache's.
     */
    bool
    loadState(binio::BinaryReader &r)
    {
        std::uint64_t n = 0;
        if (!r.get(n) || n != tags.size())
            return false;
        for (Addr &tag : tags)
            if (!r.get(tag))
                return false;
        return true;
    }

  protected:
    std::size_t
    setBase(Addr addr) const
    {
        return std::size_t((addr >> lineShift) & indexMask) * numWays;
    }

    /**
     * Move @p way to the MRU position of its set, shifting the
     * younger entries down.  Derived classes with side-car state
     * override rotateHook to keep their arrays in step.
     */
    void
    promote(std::size_t base, std::uint32_t way)
    {
        if (way == 0)
            return;
        const Addr line = tags[base + way];
        for (std::uint32_t w = way; w > 0; --w)
            tags[base + w] = tags[base + w - 1];
        tags[base] = line;
        rotated(base, way);
    }

    /** Notification that ways [0, way] of @p base rotated by one. */
    virtual void rotated(std::size_t base, std::uint32_t way)
    {
        (void)base;
        (void)way;
    }

    virtual ~SetAssocTags() = default;

  private:
    std::uint32_t lineSize;
    std::uint32_t numWays;
    std::uint32_t numSets;
    std::uint64_t indexMask;
    unsigned lineShift;
    std::vector<Addr> tags;
};

} // namespace detail

/**
 * The primary cache: write-through, write-allocate, valid/invalid
 * lines only (also used for the instruction cache).
 */
class L1Cache : public detail::SetAssocTags
{
  public:
    /**
     * @param size      Capacity in bytes (power of two).
     * @param line_size Line size in bytes (power of two).
     * @param ways      Associativity (default direct-mapped).
     */
    L1Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways = 1)
        : SetAssocTags(size, line_size, ways)
    {}

    /**
     * Install the line containing @p addr.
     * @return The evicted victim's line address, or invalidAddr.
     */
    Addr fill(Addr addr) { return insert(addr); }

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr) { remove(addr); }

    /** Invalidate every line. */
    void flush() { clear(); }
};

/**
 * The secondary cache: write-back, MESI states, LRU replacement.
 */
class L2Cache : public detail::SetAssocTags
{
  public:
    L2Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways = 1)
        : SetAssocTags(size, line_size, ways),
          states(std::size_t{sets()} * this->ways(), LineState::Invalid)
    {}

    /** State of the line containing @p addr (Invalid if absent). */
    LineState
    state(Addr addr) const
    {
        const std::uint32_t way = find(addr);
        return way < ways() ? states[slot(addr, way)] : LineState::Invalid;
    }

    bool contains(Addr addr) const
    {
        return state(addr) != LineState::Invalid;
    }

    /**
     * Install the line containing @p addr in @p new_state.
     *
     * @param[out] victim       Line address of the evicted line, or
     *                          invalidAddr.
     * @param[out] victim_dirty True iff the victim was Modified.
     */
    void
    fill(Addr addr, LineState new_state, Addr &victim, bool &victim_dirty)
    {
        victim = invalidAddr;
        victim_dirty = false;
        if (find(addr) >= ways()) {
            // Capture the would-be victim's state before insertion.
            const auto [victim_line, victim_way] = peekVictim(addr);
            victim = victim_line;
            victim_dirty = victim != invalidAddr &&
                states[slot(addr, victim_way)] == LineState::Modified;
        }
        insert(addr);
        states[slot(addr, 0)] = new_state;
    }

    /** Change the state of a resident line. */
    void
    setState(Addr addr, LineState new_state)
    {
        const std::uint32_t way = find(addr);
        if (way >= ways())
            panic("L2Cache::setState on absent line");
        states[slot(addr, way)] = new_state;
    }

    /** Invalidate the line containing @p addr if present. */
    void
    invalidate(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way < ways()) {
            states[slot(addr, way)] = LineState::Invalid;
            remove(addr);
        }
    }

    void
    flush()
    {
        clear();
        states.assign(states.size(), LineState::Invalid);
    }

    /** Serialize tags plus the MESI side-car array. */
    void
    saveState(binio::BinaryWriter &w) const
    {
        SetAssocTags::saveState(w);
        for (const LineState s : states)
            w.put(std::uint8_t(s));
    }

    /** Inverse of saveState(); false on malformed input. */
    bool
    loadState(binio::BinaryReader &r)
    {
        if (!SetAssocTags::loadState(r))
            return false;
        for (LineState &s : states) {
            std::uint8_t v = 0;
            if (!r.get(v) || v > std::uint8_t(LineState::Modified))
                return false;
            s = LineState(v);
        }
        return true;
    }

  private:
    void
    rotated(std::size_t base, std::uint32_t way) override
    {
        const LineState moved = states[base + way];
        for (std::uint32_t w = way; w > 0; --w)
            states[base + w] = states[base + w - 1];
        states[base] = moved;
    }

    std::vector<LineState> states;
};

} // namespace oscache

#endif // OSCACHE_MEM_CACHE_HH
