/**
 * @file
 * Set-associative cache tag arrays.
 *
 * Two concrete flavours are provided:
 *
 *  - L1Cache: the write-through, write-allocate primary data cache
 *    (also reused for the primary instruction cache).  Lines are
 *    merely valid or invalid — data is always clean; the L2 and
 *    memory are updated through the write buffer.
 *
 *  - L2Cache: the write-back secondary cache holding Illinois/MESI
 *    line states.
 *
 * Both are pure tag/state models, as usual for trace-driven
 * simulation.  The paper's machine is direct-mapped throughout
 * (ways = 1, the default); higher associativity with LRU replacement
 * is supported for the conflict-miss ablations.
 *
 * Storage is structure-of-arrays: one flat tag bank per cache (set
 * index × way, way 0 = MRU) and, for the secondary cache, a parallel
 * flat MESI state bank rotated in lock-step by the LRU promotion —
 * there is no virtual hook in the rotation loop and no per-set
 * allocation.  A cache can own its banks (standalone construction,
 * unit tests) or carve them from a SimArena so every bank of every
 * processor lands in one contiguous per-run allocation.
 */

#ifndef OSCACHE_MEM_CACHE_HH
#define OSCACHE_MEM_CACHE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/binio.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "mem/arena.hh"

namespace oscache
{

/** Illinois (MESI) line states for the secondary cache. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< Clean and only copy (Illinois' "valid-exclusive").
    Modified,
};

namespace detail
{

/**
 * Shared guts of the two cache flavours: an N-way set-associative
 * tag array with LRU replacement.  Way 0 of a set is the MRU
 * position; fills and touches promote to it.
 */
class SetAssocTags
{
  public:
    SetAssocTags(std::uint32_t size, std::uint32_t line_size,
                 std::uint32_t ways)
        : SetAssocTags(size, line_size, ways, nullptr)
    {}

    /** As above, but the tag bank is carved from @p arena. */
    SetAssocTags(std::uint32_t size, std::uint32_t line_size,
                 std::uint32_t ways, SimArena &arena)
        : SetAssocTags(size, line_size, ways, &arena)
    {}

    SetAssocTags(const SetAssocTags &) = delete;
    SetAssocTags &operator=(const SetAssocTags &) = delete;
    SetAssocTags(SetAssocTags &&) = default;
    SetAssocTags &operator=(SetAssocTags &&) = default;

    /** Arena bytes the tag bank of this geometry consumes. */
    static constexpr std::size_t
    tagBankBytes(std::uint32_t size, std::uint32_t line_size)
    {
        return SimArena::spanBytes(size / line_size, sizeof(Addr));
    }

    Addr lineAddr(Addr addr) const { return addr & ~(Addr{lineSize} - 1); }

    /** Way holding @p addr, or numWays when absent. */
    std::uint32_t
    find(Addr addr) const
    {
        const Addr line = lineAddr(addr);
        const Addr *set = tags + setBase(addr);
        for (std::uint32_t w = 0; w < numWays; ++w)
            if (set[w] == line)
                return w;
        return numWays;
    }

    bool contains(Addr addr) const { return find(addr) < numWays; }

    /** Promote @p addr's way to MRU.  @return true iff present. */
    bool
    touch(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way >= numWays)
            return false;
        promote(setBase(addr), way);
        return true;
    }

    /**
     * Promote a way returned by find() for the same @p addr — the
     * second half of a find()/promoteWay() pair that lets hot paths
     * probe once and promote only on a hit.
     */
    void
    promoteWay(Addr addr, std::uint32_t way)
    {
        promote(setBase(addr), way);
    }

    /**
     * Install @p addr's line at the MRU position.
     * @return The evicted LRU victim's line address, or invalidAddr.
     */
    Addr
    insert(Addr addr)
    {
        const Addr line = lineAddr(addr);
        const std::size_t base = setBase(addr);
        std::uint32_t way = find(addr);
        Addr victim = invalidAddr;
        if (way >= numWays) {
            // Prefer an invalid way; otherwise evict the LRU.
            way = numWays - 1;
            for (std::uint32_t w = 0; w < numWays; ++w)
                if (tags[base + w] == invalidAddr) {
                    way = w;
                    break;
                }
            if (tags[base + way] != invalidAddr)
                victim = tags[base + way];
            tags[base + way] = line;
        }
        promote(base, way);
        return victim;
    }

    /**
     * The way insert() would evict for @p addr when the line is
     * absent: the first invalid way if any, else the LRU way.
     * @return {victim line address or invalidAddr, way index}.
     */
    std::pair<Addr, std::uint32_t>
    peekVictim(Addr addr) const
    {
        const std::size_t base = setBase(addr);
        for (std::uint32_t w = 0; w < numWays; ++w)
            if (tags[base + w] == invalidAddr)
                return {invalidAddr, w};
        return {tags[base + numWays - 1], numWays - 1};
    }

    /** Remove @p addr's line.  @return the way it held, or numWays. */
    std::uint32_t
    remove(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way < numWays)
            tags[setBase(addr) + way] = invalidAddr;
        return way;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < slotCount; ++i)
            tags[i] = invalidAddr;
    }

    std::uint32_t getLineSize() const { return lineSize; }
    std::uint32_t sets() const { return numSets; }
    std::uint32_t ways() const { return numWays; }

    /** Line addresses of every resident line (audit walks). */
    std::vector<Addr>
    residentLines() const
    {
        std::vector<Addr> lines;
        for (std::size_t i = 0; i < slotCount; ++i)
            if (tags[i] != invalidAddr)
                lines.push_back(tags[i]);
        return lines;
    }

    /** Index of the (set, way) slot, for side-car state arrays. */
    std::size_t
    slot(Addr addr, std::uint32_t way) const
    {
        return setBase(addr) + way;
    }

    /** Serialize the tag array (live-points checkpointing). */
    void
    saveState(binio::BinaryWriter &w) const
    {
        w.put(std::uint64_t(slotCount));
        for (std::size_t i = 0; i < slotCount; ++i)
            w.put(tags[i]);
    }

    /**
     * Inverse of saveState(); false on truncation or when the stored
     * geometry does not match this cache's.
     */
    bool
    loadState(binio::BinaryReader &r)
    {
        std::uint64_t n = 0;
        if (!r.get(n) || n != slotCount)
            return false;
        for (std::size_t i = 0; i < slotCount; ++i)
            if (!r.get(tags[i]))
                return false;
        return true;
    }

  protected:
    /**
     * Optional flat bank the LRU promotion rotates in lock-step with
     * the tags.  L2Cache points this at its MESI state bank; the
     * former virtual rotated() hook is gone from the inner loop.
     */
    LineState *sideStates = nullptr;

    std::size_t slots() const { return slotCount; }

    std::size_t
    setBase(Addr addr) const
    {
        return std::size_t((addr >> lineShift) & indexMask) * numWays;
    }

    /**
     * Move @p way to the MRU position of its set, shifting the
     * younger entries down and rotating the side-car state bank (when
     * attached) in the same pass.
     */
    void
    promote(std::size_t base, std::uint32_t way)
    {
        if (way == 0)
            return;
        Addr *set = tags + base;
        const Addr line = set[way];
        for (std::uint32_t w = way; w > 0; --w)
            set[w] = set[w - 1];
        set[0] = line;
        if (sideStates != nullptr) {
            LineState *states = sideStates + base;
            const LineState moved = states[way];
            for (std::uint32_t w = way; w > 0; --w)
                states[w] = states[w - 1];
            states[0] = moved;
        }
    }

  private:
    SetAssocTags(std::uint32_t size, std::uint32_t line_size,
                 std::uint32_t ways, SimArena *arena)
        : lineSize(line_size), numWays(ways),
          numSets(size / (line_size * ways)), indexMask(numSets - 1),
          lineShift(floorLog2(line_size)),
          slotCount(std::size_t{numSets} * ways)
    {
        if (!isPowerOfTwo(size) || !isPowerOfTwo(line_size) ||
            !isPowerOfTwo(ways) || numSets == 0 ||
            !isPowerOfTwo(numSets))
            panic("cache: size, line size, and ways must be powers of "
                  "two with at least one set");
        if (arena != nullptr) {
            tags = arena->allocate<Addr>(slotCount);
        } else {
            ownedTags.resize(slotCount);
            tags = ownedTags.data();
        }
        clear();
    }

    std::uint32_t lineSize;
    std::uint32_t numWays;
    std::uint32_t numSets;
    std::uint64_t indexMask;
    unsigned lineShift;
    std::size_t slotCount;
    /** Flat tag bank (set × way); arena span or ownedTags.data(). */
    Addr *tags = nullptr;
    /** Backing storage when constructed without an arena. */
    std::vector<Addr> ownedTags;
};

} // namespace detail

/**
 * The primary cache: write-through, write-allocate, valid/invalid
 * lines only (also used for the instruction cache).
 */
class L1Cache : public detail::SetAssocTags
{
  public:
    /**
     * @param size      Capacity in bytes (power of two).
     * @param line_size Line size in bytes (power of two).
     * @param ways      Associativity (default direct-mapped).
     */
    L1Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways = 1)
        : SetAssocTags(size, line_size, ways)
    {}

    /** As above, with the tag bank carved from @p arena. */
    L1Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways, SimArena &arena)
        : SetAssocTags(size, line_size, ways, arena)
    {}

    /** Arena bytes this geometry consumes. */
    static constexpr std::size_t
    arenaBytes(std::uint32_t size, std::uint32_t line_size)
    {
        return tagBankBytes(size, line_size);
    }

    /**
     * Install the line containing @p addr.
     * @return The evicted victim's line address, or invalidAddr.
     */
    Addr fill(Addr addr) { return insert(addr); }

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr) { remove(addr); }

    /** Invalidate every line. */
    void flush() { clear(); }
};

/**
 * The secondary cache: write-back, MESI states, LRU replacement.
 * The state bank is a flat side-car array the base class rotates in
 * lock-step with the tags.
 */
class L2Cache : public detail::SetAssocTags
{
  public:
    L2Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways = 1)
        : SetAssocTags(size, line_size, ways),
          ownedStates(slots(), LineState::Invalid)
    {
        states = ownedStates.data();
        sideStates = states;
    }

    /** As above, with both banks carved from @p arena. */
    L2Cache(std::uint32_t size, std::uint32_t line_size,
            std::uint32_t ways, SimArena &arena)
        : SetAssocTags(size, line_size, ways, arena)
    {
        states = arena.allocate<LineState>(slots());
        for (std::size_t i = 0; i < slots(); ++i)
            states[i] = LineState::Invalid;
        sideStates = states;
    }

    L2Cache(L2Cache &&other) noexcept
        : SetAssocTags(std::move(other)),
          ownedStates(std::move(other.ownedStates)),
          states(other.states)
    {
        // Re-anchor the side-car pointer at the moved-to object.
        sideStates = states;
    }

    /** Arena bytes this geometry consumes (tags + state bank). */
    static constexpr std::size_t
    arenaBytes(std::uint32_t size, std::uint32_t line_size)
    {
        return tagBankBytes(size, line_size) +
               SimArena::spanBytes(size / line_size, sizeof(LineState));
    }

    /** State of the line containing @p addr (Invalid if absent). */
    LineState
    state(Addr addr) const
    {
        const std::uint32_t way = find(addr);
        return way < ways() ? states[slot(addr, way)] : LineState::Invalid;
    }

    /**
     * State of the line at a way returned by find() for the same
     * @p addr — the second half of a find()/stateOfWay() pair that
     * lets hot paths probe the tag bank once.
     */
    LineState
    stateOfWay(Addr addr, std::uint32_t way) const
    {
        return states[slot(addr, way)];
    }

    bool contains(Addr addr) const
    {
        return state(addr) != LineState::Invalid;
    }

    /**
     * Install the line containing @p addr in @p new_state.
     *
     * @param[out] victim       Line address of the evicted line, or
     *                          invalidAddr.
     * @param[out] victim_dirty True iff the victim was Modified.
     */
    void
    fill(Addr addr, LineState new_state, Addr &victim, bool &victim_dirty)
    {
        victim = invalidAddr;
        victim_dirty = false;
        if (find(addr) >= ways()) {
            // Capture the would-be victim's state before insertion.
            const auto [victim_line, victim_way] = peekVictim(addr);
            victim = victim_line;
            victim_dirty = victim != invalidAddr &&
                states[slot(addr, victim_way)] == LineState::Modified;
        }
        insert(addr);
        states[slot(addr, 0)] = new_state;
    }

    /** Change the state of a resident line. */
    void
    setState(Addr addr, LineState new_state)
    {
        const std::uint32_t way = find(addr);
        if (way >= ways())
            panic("L2Cache::setState on absent line");
        states[slot(addr, way)] = new_state;
    }

    /** Invalidate the line containing @p addr if present. */
    void
    invalidate(Addr addr)
    {
        const std::uint32_t way = find(addr);
        if (way < ways()) {
            states[slot(addr, way)] = LineState::Invalid;
            remove(addr);
        }
    }

    void
    flush()
    {
        clear();
        for (std::size_t i = 0; i < slots(); ++i)
            states[i] = LineState::Invalid;
    }

    /** Serialize tags plus the MESI side-car array. */
    void
    saveState(binio::BinaryWriter &w) const
    {
        SetAssocTags::saveState(w);
        for (std::size_t i = 0; i < slots(); ++i)
            w.put(std::uint8_t(states[i]));
    }

    /** Inverse of saveState(); false on malformed input. */
    bool
    loadState(binio::BinaryReader &r)
    {
        if (!SetAssocTags::loadState(r))
            return false;
        for (std::size_t i = 0; i < slots(); ++i) {
            std::uint8_t v = 0;
            if (!r.get(v) || v > std::uint8_t(LineState::Modified))
                return false;
            states[i] = LineState(v);
        }
        return true;
    }

  private:
    /** Backing storage when constructed without an arena. */
    std::vector<LineState> ownedStates;
    /** Flat MESI bank, parallel to the tag bank. */
    LineState *states = nullptr;
};

} // namespace oscache

#endif // OSCACHE_MEM_CACHE_HH
