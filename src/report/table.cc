#include "report/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace oscache
{

TextTable::TextTable(std::string title_, std::vector<std::string> columns_)
    : title(std::move(title_)), columns(std::move(columns_))
{
}

void
TextTable::addRow(const std::string &label, std::vector<std::string> cells)
{
    rows.push_back(Row{false, label, std::move(cells)});
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int decimals)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(formatValue(v, decimals));
    addRow(label, std::move(cells));
}

void
TextTable::addSeparator()
{
    rows.push_back(Row{true, "", {}});
}

std::string
TextTable::str() const
{
    std::size_t label_width = 24;
    for (const auto &row : rows)
        label_width = std::max(label_width, row.label.size() + 1);
    std::size_t cell_width = 10;
    for (const auto &col : columns)
        cell_width = std::max(cell_width, col.size() + 2);
    for (const auto &row : rows)
        for (const auto &cell : row.cells)
            cell_width = std::max(cell_width, cell.size() + 2);

    std::ostringstream os;
    const std::size_t total =
        label_width + cell_width * columns.size();

    os << title << "\n";
    os << std::string(total, '=') << "\n";

    auto pad = [](const std::string &s, std::size_t w) {
        return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
    };
    auto rpad = [](const std::string &s, std::size_t w) {
        return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
    };

    os << pad("", label_width);
    for (const auto &col : columns)
        os << rpad(col, cell_width);
    os << "\n" << std::string(total, '-') << "\n";

    for (const auto &row : rows) {
        if (row.separator) {
            os << std::string(total, '-') << "\n";
            continue;
        }
        os << pad(row.label, label_width);
        for (std::size_t i = 0; i < columns.size(); ++i)
            os << rpad(i < row.cells.size() ? row.cells[i] : "", cell_width);
        os << "\n";
    }
    os << std::string(total, '=') << "\n";
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
formatValue(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
bar(double value, double full, unsigned width)
{
    if (full <= 0.0)
        full = 1.0;
    double frac = value / full;
    frac = std::clamp(frac, 0.0, 1.0);
    const unsigned filled = static_cast<unsigned>(frac * width + 0.5);
    std::string s(filled, '#');
    s += std::string(width - filled, '.');
    return s;
}

} // namespace oscache
