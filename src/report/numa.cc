#include "report/numa.hh"

#include <ostream>

#include "common/log.hh"
#include "report/table.hh"

namespace oscache
{

namespace
{

double
pct(double part, double whole)
{
    return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

} // namespace

void
renderNumaTable(std::ostream &os, const std::string &title,
                const std::vector<NumaColumn> &columns)
{
    std::vector<std::string> headers;
    headers.reserve(columns.size());
    for (const NumaColumn &c : columns)
        headers.push_back(c.label);

    TextTable table(title, headers);
    std::vector<std::string> local, remote, filtered, link_busy, link_kb;
    for (const NumaColumn &c : columns) {
        if (c.stats == nullptr || c.bus == nullptr ||
            c.bus->numSockets < 2)
            panic("NUMA table column '", c.label,
                  "' is not a multi-socket run");
        const BusSnapshot &b = *c.bus;
        const double reads =
            double(b.localHomeReads + b.remoteHomeReads);
        const double snoops =
            double(b.snoopsFiltered + b.snoopsForwarded);
        local.push_back(
            formatValue(pct(double(b.localHomeReads), reads), 1) + "%");
        remote.push_back(
            formatValue(pct(double(b.remoteHomeReads), reads), 1) + "%");
        filtered.push_back(
            formatValue(pct(double(b.snoopsFiltered), snoops), 1) + "%");
        link_busy.push_back(
            formatValue(pct(double(b.linkBusyCycles),
                            double(c.stats->totalTime())),
                        1) +
            "%");
        link_kb.push_back(
            formatValue(double(b.linkBytes) / 1024.0, 0));
    }
    table.addRow("Local-home reads", local);
    table.addRow("Remote-home reads", remote);
    table.addRow("Snoops filtered", filtered);
    table.addRow("Link occupancy", link_busy);
    table.addRow("Link KB moved", link_kb);
    os << table.str();
}

} // namespace oscache
