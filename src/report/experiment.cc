#include "report/experiment.hh"

#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "synth/generator.hh"

namespace oscache
{

namespace
{

using CacheKey = std::tuple<int, bool, bool, bool>;
using TracePtr = std::shared_ptr<const Trace>;

/**
 * All mutable cache state behind one mutex.  Each entry is a shared
 * future acting as the per-key generation latch: the first requester
 * inserts the future and generates outside the lock; concurrent
 * requesters for the same key block on the future instead of
 * regenerating.  Entries hold shared_ptrs, so clearTraceCache() only
 * detaches them from the map — threads still running on a trace keep
 * it alive.
 */
/** One cache entry: the generation latch for a key. */
struct Entry
{
    std::shared_future<TracePtr> future;
};

struct CacheState
{
    std::mutex mutex;
    std::map<CacheKey, std::shared_ptr<Entry>> entries;
    TraceCacheStats stats;
    TraceLoadHook load;
    TraceStoreHook store;
};

CacheState &
cacheState()
{
    static CacheState state;
    return state;
}

TracePtr
cachedTrace(WorkloadKind workload, const CoherenceOptions &options)
{
    const CacheKey key{static_cast<int>(workload),
                       options.privatizeCounters, options.relocate,
                       options.selectiveUpdate};
    CacheState &state = cacheState();

    std::promise<TracePtr> promise;
    std::shared_ptr<Entry> entry;
    bool creator = false;
    TraceLoadHook load;
    TraceStoreHook store;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        const auto it = state.entries.find(key);
        if (it != state.entries.end()) {
            ++state.stats.memoryHits;
            entry = it->second;
        } else {
            creator = true;
            entry = std::make_shared<Entry>();
            entry->future = promise.get_future().share();
            state.entries.emplace(key, entry);
            load = state.load;
            store = state.store;
        }
    }

    if (creator) {
        try {
            std::optional<Trace> loaded;
            if (load)
                loaded = load(workload, options);
            const bool fresh = !loaded.has_value();
            TracePtr ptr = std::make_shared<const Trace>(
                fresh ? generateTrace(workload, options)
                      : std::move(*loaded));
            {
                std::lock_guard<std::mutex> lock(state.mutex);
                ++(fresh ? state.stats.generated
                         : state.stats.persistentHits);
            }
            if (fresh && store)
                store(workload, options, *ptr);
            promise.set_value(std::move(ptr));
        } catch (...) {
            // Drop the failed latch (if a clear hasn't already) so a
            // later request retries instead of inheriting the error
            // forever; everyone already waiting sees the exception.
            {
                std::lock_guard<std::mutex> lock(state.mutex);
                const auto it = state.entries.find(key);
                if (it != state.entries.end() && it->second == entry)
                    state.entries.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return entry->future.get();
}

} // namespace

std::shared_ptr<const Trace>
cachedWorkloadTrace(WorkloadKind workload, const CoherenceOptions &options)
{
    return cachedTrace(workload, options);
}

RunResult
runWorkload(WorkloadKind workload, const SystemSetup &setup,
            const MachineConfig &machine)
{
    const TracePtr trace = cachedWorkloadTrace(workload, setup.coherence);
    const WorkloadProfile profile = WorkloadProfile::forKind(workload);
    return runOnTrace(*trace, machine, profile.simOptions(), setup);
}

RunResult
runWorkload(WorkloadKind workload, SystemKind kind,
            const MachineConfig &machine)
{
    return runWorkload(workload, SystemSetup::forKind(kind), machine);
}

void
clearTraceCache()
{
    CacheState &state = cacheState();
    std::map<CacheKey, std::shared_ptr<Entry>> detached;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        detached.swap(state.entries);
    }
    // The detached entries (and any traces only they referenced) are
    // destroyed here, outside the lock.  In-flight generations hold
    // their own Entry reference and complete normally.
}

TraceCacheStats
traceCacheStats()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.stats;
}

void
resetTraceCacheStats()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.stats = TraceCacheStats{};
}

void
setTraceCacheHooks(TraceLoadHook load, TraceStoreHook store)
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.load = std::move(load);
    state.store = std::move(store);
}

} // namespace oscache
