#include "report/experiment.hh"

#include <map>
#include <tuple>

#include "synth/generator.hh"

namespace oscache
{

namespace
{

using CacheKey = std::tuple<int, bool, bool, bool>;

std::map<CacheKey, Trace> &
traceCache()
{
    static std::map<CacheKey, Trace> cache;
    return cache;
}

const Trace &
cachedTrace(WorkloadKind workload, const CoherenceOptions &options)
{
    const CacheKey key{static_cast<int>(workload),
                       options.privatizeCounters, options.relocate,
                       options.selectiveUpdate};
    auto &cache = traceCache();
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, generateTrace(workload, options)).first;
    return it->second;
}

} // namespace

RunResult
runWorkload(WorkloadKind workload, const SystemSetup &setup,
            const MachineConfig &machine)
{
    const Trace &trace = cachedTrace(workload, setup.coherence);
    const WorkloadProfile profile = WorkloadProfile::forKind(workload);
    return runOnTrace(trace, machine, profile.simOptions(), setup);
}

RunResult
runWorkload(WorkloadKind workload, SystemKind kind,
            const MachineConfig &machine)
{
    return runWorkload(workload, SystemSetup::forKind(kind), machine);
}

void
clearTraceCache()
{
    traceCache().clear();
}

} // namespace oscache
