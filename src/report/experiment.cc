#include "report/experiment.hh"

#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exp/hash.hh"
#include "obs/metrics.hh"
#include "sample/run.hh"
#include "synth/generator.hh"
#include "synth/stream_source.hh"

namespace oscache
{

namespace
{

using TracePtr = std::shared_ptr<const Trace>;

/**
 * Process-wide trace-cache counters, registered on first use.  The
 * registry freezes its layout at the first record, so all three are
 * created together.
 */
struct CacheCounters
{
    Counter hits;
    Counter misses;
    Counter evictions;
};

CacheCounters &
cacheCounters()
{
    static CacheCounters counters{
        processMetrics().counter("trace_cache.hit"),
        processMetrics().counter("trace_cache.miss"),
        processMetrics().counter("trace_cache.eviction"),
    };
    return counters;
}

/** Approximate in-memory footprint of a materialized trace. */
std::size_t
traceBytes(const Trace &trace)
{
    return trace.totalRecords() * sizeof(TraceRecord) +
           trace.blockOps().size() * sizeof(BlockOp) +
           trace.updatePages().size() * sizeof(Addr);
}

/** Content-hash key for (workload, coherence options, cpu count). */
std::string
traceKey(WorkloadKind workload, const CoherenceOptions &options,
         unsigned num_cpus)
{
    ContentHash h;
    mixProfile(h, WorkloadProfile::forKind(workload));
    mixCoherence(h, options);
    // The historical keys were implicitly 4-cpu; keep them stable.
    if (num_cpus != 4)
        h.mix(num_cpus);
    return h.hex();
}

/**
 * All mutable cache state behind one mutex.  Each entry is a shared
 * future acting as the per-key generation latch: the first requester
 * inserts the future and generates outside the lock; concurrent
 * requesters for the same key block on the future instead of
 * regenerating.  Entries hold shared_ptrs, so evicting or clearing
 * only detaches them from the map — threads still running on a
 * trace keep it alive.  Completed entries carry their footprint and
 * a last-use stamp for the LRU size cap.
 */
struct Entry
{
    std::shared_future<TracePtr> future;
    std::uint64_t lastUse = 0;
    std::size_t bytes = 0;
    bool ready = false;
};

struct CacheState
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    std::uint64_t useClock = 0;
    std::size_t totalBytes = 0;
    std::size_t capacityBytes = defaultTraceCacheBytes;
    TraceCacheStats stats;
    TraceLoadHook load;
    TraceStoreHook store;

    TraceSourceMode sourceMode = TraceSourceMode::Materialized;
    std::size_t readAhead = defaultStreamReadAhead;
    TraceSourceHook sourceHook;
};

CacheState &
cacheState()
{
    static CacheState state;
    return state;
}

/**
 * Drop least-recently-used completed entries until the total fits
 * the cap again.  @p keep (the entry just inserted or hit) is never
 * the victim, so a single oversized trace still serves its
 * requesters.  Evicted entries are appended to @p out for
 * destruction outside the lock.
 */
void
evictLocked(CacheState &state, const std::shared_ptr<Entry> &keep,
            std::vector<std::shared_ptr<Entry>> &out)
{
    while (state.capacityBytes != 0 &&
           state.totalBytes > state.capacityBytes) {
        auto victim = state.entries.end();
        for (auto it = state.entries.begin(); it != state.entries.end();
             ++it) {
            if (!it->second->ready || it->second == keep)
                continue;
            if (victim == state.entries.end() ||
                it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == state.entries.end())
            break;
        state.totalBytes -= victim->second->bytes;
        ++state.stats.evictions;
        out.push_back(std::move(victim->second));
        state.entries.erase(victim);
    }
}

TracePtr
cachedTrace(WorkloadKind workload, const CoherenceOptions &options,
            unsigned num_cpus)
{
    const std::string key = traceKey(workload, options, num_cpus);
    CacheState &state = cacheState();
    CacheCounters &counters = cacheCounters();

    std::promise<TracePtr> promise;
    std::shared_ptr<Entry> entry;
    bool creator = false;
    TraceLoadHook load;
    TraceStoreHook store;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        const auto it = state.entries.find(key);
        if (it != state.entries.end()) {
            ++state.stats.memoryHits;
            entry = it->second;
            entry->lastUse = ++state.useClock;
        } else {
            creator = true;
            entry = std::make_shared<Entry>();
            entry->future = promise.get_future().share();
            entry->lastUse = ++state.useClock;
            state.entries.emplace(key, entry);
            load = state.load;
            store = state.store;
        }
    }
    (creator ? counters.misses : counters.hits).add();

    if (creator) {
        try {
            std::optional<Trace> loaded;
            if (load)
                loaded = load(workload, options, num_cpus);
            const bool fresh = !loaded.has_value();
            TracePtr ptr = std::make_shared<const Trace>(
                fresh ? generateTrace(workload, options, num_cpus)
                      : std::move(*loaded));
            std::vector<std::shared_ptr<Entry>> evicted;
            {
                std::lock_guard<std::mutex> lock(state.mutex);
                ++(fresh ? state.stats.generated
                         : state.stats.persistentHits);
                entry->bytes = traceBytes(*ptr);
                entry->ready = true;
                // The entry may have been detached by a concurrent
                // clearTraceCache(); only account for it if present.
                const auto it = state.entries.find(key);
                if (it != state.entries.end() && it->second == entry) {
                    state.totalBytes += entry->bytes;
                    evictLocked(state, entry, evicted);
                }
            }
            counters.evictions.add(evicted.size());
            if (fresh && store)
                store(workload, options, num_cpus, *ptr);
            promise.set_value(std::move(ptr));
        } catch (...) {
            // Drop the failed latch (if a clear hasn't already) so a
            // later request retries instead of inheriting the error
            // forever; everyone already waiting sees the exception.
            {
                std::lock_guard<std::mutex> lock(state.mutex);
                const auto it = state.entries.find(key);
                if (it != state.entries.end() && it->second == entry)
                    state.entries.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return entry->future.get();
}

} // namespace

std::shared_ptr<const Trace>
cachedWorkloadTrace(WorkloadKind workload, const CoherenceOptions &options,
                    unsigned num_cpus)
{
    return cachedTrace(workload, options, num_cpus);
}

RunResult
runWorkload(WorkloadKind workload, const SystemSetup &setup,
            const MachineConfig &machine)
{
    const WorkloadProfile profile = WorkloadProfile::forKind(workload);

    TraceSourceMode mode;
    TraceSourceHook hook;
    {
        CacheState &state = cacheState();
        std::lock_guard<std::mutex> lock(state.mutex);
        mode = state.sourceMode;
        hook = state.sourceHook;
    }

    // Sampled mode: replay under the process-wide sampling plan.
    // Hot-spot-prefetch cells are exempt — their profile pass needs
    // complete per-block miss counts, which sampling decimates.
    const std::optional<sample::SamplingPlan> &plan =
        sample::globalSamplingPlan();
    const bool sampled = plan.has_value() && !setup.hotspotPrefetch;

    if (mode == TraceSourceMode::Streamed) {
        const auto open = [&]() -> std::unique_ptr<TraceSource> {
            if (hook) {
                if (auto source = hook(workload, setup.coherence,
                                       machine.numCpus))
                    return source;
            }
            return std::make_unique<SynthTraceSource>(
                profile, setup.coherence, machine.numCpus);
        };
        if (sampled) {
            sample::SampleRunOptions sample_options;
            sample_options.plan = *plan;
            sample::SampleRunOutcome outcome = sample::runSampled(
                open, machine, profile.simOptions(), setup.blockScheme,
                sample_options);
            if (!outcome.ok)
                fatal("sampled run failed: ", outcome.error);
            return std::move(outcome.result);
        }
        return runOnSource(open, machine, profile.simOptions(), setup);
    }

    const TracePtr trace =
        cachedWorkloadTrace(workload, setup.coherence, machine.numCpus);
    if (sampled) {
        const auto open = [trace]() -> std::unique_ptr<TraceSource> {
            return std::make_unique<MaterializedTraceSource>(*trace);
        };
        sample::SampleRunOptions sample_options;
        sample_options.plan = *plan;
        sample::SampleRunOutcome outcome = sample::runSampled(
            open, machine, profile.simOptions(), setup.blockScheme,
            sample_options);
        if (!outcome.ok)
            fatal("sampled run failed: ", outcome.error);
        return std::move(outcome.result);
    }
    return runOnTrace(*trace, machine, profile.simOptions(), setup);
}

RunResult
runWorkload(WorkloadKind workload, SystemKind kind,
            const MachineConfig &machine)
{
    return runWorkload(workload, SystemSetup::forKind(kind), machine);
}

void
clearTraceCache()
{
    CacheState &state = cacheState();
    std::map<std::string, std::shared_ptr<Entry>> detached;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        detached.swap(state.entries);
        state.totalBytes = 0;
    }
    // The detached entries (and any traces only they referenced) are
    // destroyed here, outside the lock.  In-flight generations hold
    // their own Entry reference and complete normally.
}

void
setTraceCacheCapacity(std::size_t bytes)
{
    CacheState &state = cacheState();
    std::vector<std::shared_ptr<Entry>> evicted;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.capacityBytes = bytes;
        evictLocked(state, nullptr, evicted);
    }
    cacheCounters().evictions.add(evicted.size());
}

std::size_t
traceCacheCapacity()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.capacityBytes;
}

TraceCacheStats
traceCacheStats()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.stats;
}

void
resetTraceCacheStats()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.stats = TraceCacheStats{};
}

void
setTraceCacheHooks(TraceLoadHook load, TraceStoreHook store)
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.load = std::move(load);
    state.store = std::move(store);
}

void
setTraceSourceMode(TraceSourceMode mode)
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.sourceMode = mode;
}

TraceSourceMode
traceSourceMode()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.sourceMode;
}

void
setStreamReadAhead(std::size_t records)
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.readAhead = records == 0 ? 1 : records;
}

std::size_t
streamReadAhead()
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.readAhead;
}

void
setTraceSourceHook(TraceSourceHook hook)
{
    CacheState &state = cacheState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.sourceHook = std::move(hook);
}

} // namespace oscache
