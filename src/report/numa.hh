/**
 * @file
 * The NUMA table: how a run's line reads split between local and
 * remote home memory, how often the home directory kept a snoop
 * socket-local, and how busy the inter-socket link was.  The
 * numa_server experiment prints one of these per geometry; the cells
 * come straight from BusSnapshot's two-level-interconnect counters.
 */

#ifndef OSCACHE_REPORT_NUMA_HH
#define OSCACHE_REPORT_NUMA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "sim/stats.hh"

namespace oscache
{

/** One column of the NUMA table: a finished run under some label. */
struct NumaColumn
{
    std::string label;
    const SimStats *stats = nullptr;
    const BusSnapshot *bus = nullptr;
};

/**
 * Render the local/remote split, snoop-filter rate, and link
 * occupancy of @p columns as one TextTable under @p title.  Every
 * column must come from a multi-socket run (bus->numSockets > 1).
 */
void renderNumaTable(std::ostream &os, const std::string &title,
                     const std::vector<NumaColumn> &columns);

} // namespace oscache

#endif // OSCACHE_REPORT_NUMA_HH
