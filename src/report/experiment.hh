/**
 * @file
 * High-level experiment driver shared by the benchmark binaries:
 * generate (and cache) the synthetic trace a named system needs,
 * run it, and return the results.
 */

#ifndef OSCACHE_REPORT_EXPERIMENT_HH
#define OSCACHE_REPORT_EXPERIMENT_HH

#include "core/runner.hh"
#include "core/system_config.hh"
#include "mem/config.hh"
#include "synth/profile.hh"

namespace oscache
{

/**
 * Run @p workload on system @p kind over machine @p machine.
 *
 * The trace is generated with the system's CoherenceOptions (the
 * layout-level part of the optimization) and replayed under the
 * system's block scheme and hot-spot pass.  Traces are cached per
 * (workload, coherence-options) within the process.
 */
RunResult runWorkload(WorkloadKind workload, SystemKind kind,
                      const MachineConfig &machine = MachineConfig::base());

/** As above with an explicit setup (for ablations). */
RunResult runWorkload(WorkloadKind workload, const SystemSetup &setup,
                      const MachineConfig &machine = MachineConfig::base());

/** Drop all cached traces (used between parameter sweeps). */
void clearTraceCache();

} // namespace oscache

#endif // OSCACHE_REPORT_EXPERIMENT_HH
