/**
 * @file
 * High-level experiment driver shared by the benchmark binaries:
 * generate (and cache) the synthetic trace a named system needs,
 * run it, and return the results.
 *
 * The in-process trace cache is concurrency-safe: any number of
 * threads may call runWorkload() at once (the parallel experiment
 * scheduler in src/exp does exactly that) and each distinct
 * (workload, coherence-options) trace is generated exactly once —
 * later requesters block on a per-key generation latch instead of
 * duplicating the work.  An optional persistence hook lets a
 * disk-backed artifact cache sit underneath the in-memory one.
 */

#ifndef OSCACHE_REPORT_EXPERIMENT_HH
#define OSCACHE_REPORT_EXPERIMENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/runner.hh"
#include "core/system_config.hh"
#include "mem/config.hh"
#include "synth/profile.hh"
#include "trace/source.hh"

namespace oscache
{

/**
 * Run @p workload on system @p kind over machine @p machine.
 *
 * The trace is generated with the system's CoherenceOptions (the
 * layout-level part of the optimization) and replayed under the
 * system's block scheme and hot-spot pass.  Traces are cached per
 * (workload, coherence-options) within the process.  Thread-safe.
 */
RunResult runWorkload(WorkloadKind workload, SystemKind kind,
                      const MachineConfig &machine = MachineConfig::base());

/** As above with an explicit setup (for ablations). */
RunResult runWorkload(WorkloadKind workload, const SystemSetup &setup,
                      const MachineConfig &machine = MachineConfig::base());

/**
 * The cached trace for (@p workload, @p options, @p num_cpus),
 * generating it (or loading it through the persistence hook) on
 * first use.  The returned pointer stays valid across
 * clearTraceCache(); holders keep the trace alive.  Thread-safe.
 */
std::shared_ptr<const Trace> cachedWorkloadTrace(
    WorkloadKind workload, const CoherenceOptions &options,
    unsigned num_cpus = 4);

/**
 * Drop all cached traces (used between parameter sweeps).
 *
 * Safe against concurrent runWorkload() calls: in-flight runs keep a
 * reference to their trace, and a generation that is still in
 * progress when the clear happens completes normally for everyone
 * already waiting on it.  No thread can observe a half-cleared map.
 */
void clearTraceCache();

/** @name Trace-cache observability and persistence @{ */

/** Counters describing where cached traces came from. */
struct TraceCacheStats
{
    /** Requests satisfied by the in-memory map (or its latches). */
    std::uint64_t memoryHits = 0;
    /** Traces loaded through the persistence hook. */
    std::uint64_t persistentHits = 0;
    /** Traces generated from scratch. */
    std::uint64_t generated = 0;
    /** Entries dropped by the LRU size cap. */
    std::uint64_t evictions = 0;
};

/**
 * Default in-memory trace-cache capacity.  Big enough that the
 * registered experiments never evict; small enough that a parameter
 * sweep over long traces cannot grow the process without bound.
 */
inline constexpr std::size_t defaultTraceCacheBytes =
    std::size_t{512} * 1024 * 1024;

/**
 * Cap the in-memory trace cache at @p bytes (approximate in-memory
 * footprint; 0 = unbounded).  When an insert pushes the total over
 * the cap, least-recently-used *completed* entries are dropped from
 * the map — holders of the shared_ptr keep their traces alive, and
 * in-flight generations are never evicted.  Thread-safe.
 */
void setTraceCacheCapacity(std::size_t bytes);

/** Current trace-cache capacity in bytes (0 = unbounded). */
std::size_t traceCacheCapacity();

/** Current process-wide trace-cache counters. */
TraceCacheStats traceCacheStats();

/** Reset the counters (cached traces themselves are kept). */
void resetTraceCacheStats();

/**
 * Loads a previously stored trace; nullopt means "not available".
 * The unsigned parameter is the cpu count the trace was generated
 * for — part of the key, since a trace schedules its processes over
 * a specific processor set.
 */
using TraceLoadHook =
    std::function<std::optional<Trace>(WorkloadKind,
                                       const CoherenceOptions &,
                                       unsigned)>;
/** Offers a freshly generated trace for storage. */
using TraceStoreHook = std::function<void(
    WorkloadKind, const CoherenceOptions &, unsigned, const Trace &)>;

/**
 * Install (or, with empty functions, remove) the persistence layer
 * consulted below the in-memory cache.  Not intended to be swapped
 * while runs are in flight; the experiment driver installs it once
 * at startup.
 */
void setTraceCacheHooks(TraceLoadHook load, TraceStoreHook store);

/** @} */

/** @name Streamed trace sourcing @{ */

/** How runWorkload() obtains its records. */
enum class TraceSourceMode
{
    /** Generate (or load) the whole trace up front and cache it. */
    Materialized,
    /**
     * Pull records through streaming cursors — from the source hook
     * (e.g. a chunked artifact file) when it offers one, else
     * directly from the synthesizer — so no full trace is built and
     * peak memory is bounded by the cursor buffers.
     */
    Streamed,
};

/** Set/get the process-wide trace-source mode.  Thread-safe. */
void setTraceSourceMode(TraceSourceMode mode);
TraceSourceMode traceSourceMode();

/**
 * Read-ahead (in records, per processor) for streamed file sources
 * opened by the hook; forwarded so tools can expose a knob.
 */
void setStreamReadAhead(std::size_t records);
std::size_t streamReadAhead();

/**
 * Opens a streamed source for (workload, options, cpu count), or
 * nullptr to fall back to on-demand synthesis.  Invoked once per
 * simulation pass under TraceSourceMode::Streamed.
 */
using TraceSourceHook = std::function<std::unique_ptr<TraceSource>(
    WorkloadKind, const CoherenceOptions &, unsigned)>;

/** Install (or clear, with an empty function) the source hook. */
void setTraceSourceHook(TraceSourceHook hook);

/** @} */

} // namespace oscache

#endif // OSCACHE_REPORT_EXPERIMENT_HH
