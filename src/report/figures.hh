/**
 * @file
 * Shared helpers for the figure-regenerating benchmark binaries.
 */

#ifndef OSCACHE_REPORT_FIGURES_HH
#define OSCACHE_REPORT_FIGURES_HH

#include <string>
#include <vector>

#include "core/runner.hh"
#include "report/experiment.hh"
#include "report/table.hh"

namespace oscache
{

/**
 * Misses remaining visible after a run: total OS primary-cache read
 * misses minus those whose latency a prefetch hid (the paper's
 * "eliminate or hide" accounting).
 */
inline double
remainingOsMisses(const SimStats &stats)
{
    return double(stats.osMissTotal() - stats.osMissPartiallyHidden);
}

/** "measured | paper" cell. */
inline std::string
cellVsPaper(double measured, double paper_value, int decimals = 2)
{
    return formatValue(measured, decimals) + " | " +
           formatValue(paper_value, decimals);
}

/** Run every workload on @p kind and return the results. */
inline std::vector<RunResult>
runAllWorkloads(SystemKind kind,
                const MachineConfig &machine = MachineConfig::base())
{
    std::vector<RunResult> results;
    for (WorkloadKind w : allWorkloads)
        results.push_back(runWorkload(w, kind, machine));
    return results;
}

/** The standard four workload column headers. */
inline std::vector<std::string>
workloadColumns()
{
    return {"TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"};
}

} // namespace oscache

#endif // OSCACHE_REPORT_FIGURES_HH
