/**
 * @file
 * The paper's published numbers, transcribed for side-by-side
 * comparison in the benchmark harness and recorded in
 * EXPERIMENTS.md.  Column order everywhere: TRFD_4, TRFD+Make,
 * ARC2D+Fsck, Shell.
 */

#ifndef OSCACHE_REPORT_PAPER_HH
#define OSCACHE_REPORT_PAPER_HH

#include <array>

namespace oscache
{
namespace paper
{

using Row = std::array<double, 4>;

/** @name Table 1: workload characteristics @{ */
inline constexpr Row table1UserTime = {49.9, 38.2, 42.7, 23.8};
inline constexpr Row table1IdleTime = {8.0, 8.2, 11.5, 29.2};
inline constexpr Row table1OsTime = {42.1, 53.6, 45.8, 47.0};
inline constexpr Row table1OsDataStall = {14.0, 14.9, 11.3, 13.3};
inline constexpr Row table1MissRate = {3.5, 4.7, 3.8, 3.2};
inline constexpr Row table1OsReadShare = {40.4, 53.6, 44.5, 61.3};
inline constexpr Row table1OsMissShare = {53.4, 69.1, 66.0, 65.9};
/** @} */

/** @name Table 2: OS data miss breakdown (%) @{ */
inline constexpr Row table2BlockOp = {43.7, 43.9, 44.0, 27.6};
inline constexpr Row table2Coherence = {14.8, 11.3, 12.9, 6.2};
inline constexpr Row table2Other = {41.5, 44.8, 43.1, 66.2};
/** @} */

/** @name Table 3: block-operation characteristics @{ */
inline constexpr Row table3SrcCached = {62.9, 71.1, 61.4, 41.0};
inline constexpr Row table3DstDirtyExcl = {19.6, 20.4, 40.6, 2.6};
inline constexpr Row table3DstShared = {0.5, 0.6, 1.0, 0.1};
inline constexpr Row table3Page = {91.5, 70.3, 30.8, 29.1};
inline constexpr Row table3Medium = {1.9, 5.2, 24.4, 3.6};
inline constexpr Row table3Small = {6.6, 24.5, 44.8, 67.3};
inline constexpr Row table3DisplInside = {6.8, 5.5, 4.1, 1.3};
inline constexpr Row table3DisplOutside = {12.3, 9.3, 15.8, 10.1};
inline constexpr Row table3ReuseInside = {42.7, 24.3, 39.2, 1.4};
inline constexpr Row table3ReuseOutside = {0.8, 3.0, 1.5, 1.4};
/** @} */

/** @name Table 4: deferred copy @{ */
inline constexpr Row table4SmallCopies = {11.0, 40.7, 76.1, 83.5};
inline constexpr Row table4ReadOnly = {14.0, 43.9, 25.0, 8.7};
inline constexpr Row table4MissesEliminated = {0.1, 0.4, 0.3, 0.1};
/** @} */

/** @name Table 5: coherence miss breakdown (%) @{ */
inline constexpr Row table5Barriers = {45.6, 35.0, 41.2, 4.8};
inline constexpr Row table5InfreqComm = {22.1, 19.9, 22.5, 25.5};
inline constexpr Row table5FreqShared = {12.6, 10.1, 14.3, 24.7};
inline constexpr Row table5Locks = {7.9, 13.5, 1.9, 19.0};
inline constexpr Row table5Other = {11.8, 21.5, 20.1, 26.0};
/** @} */

/** @name Figure 2: normalized OS misses under block schemes @{ */
inline constexpr Row fig2BlkPref = {0.66, 0.64, 0.63, 0.73};
inline constexpr Row fig2BlkBypass = {1.39, 1.36, 1.18, 0.91};
inline constexpr Row fig2BlkByPref = {0.65, 0.62, 0.62, 0.73};
inline constexpr Row fig2BlkDma = {0.49, 0.39, 0.45, 0.63};
/** @} */

/** @name Figure 3: normalized OS execution time @{ */
inline constexpr Row fig3BlkPref = {0.95, 0.96, 0.96, 0.96};
inline constexpr Row fig3BlkBypass = {0.98, 1.17, 1.16, 1.07};
inline constexpr Row fig3BlkByPref = {0.96, 0.96, 0.96, 0.97};
inline constexpr Row fig3BlkDma = {0.89, 0.83, 0.89, 0.96};
inline constexpr Row fig3BCohReloc = {0.88, 0.81, 0.86, 0.96};
inline constexpr Row fig3BCohRelUp = {0.86, 0.79, 0.85, 0.88};
inline constexpr Row fig3BCPref = {0.82, 0.78, 0.83, 0.87};
inline constexpr Row fig3BCPrefAlt = {0.81, 0.78, 0.83, 0.86};
/** @} */

/** @name Figure 4: normalized OS misses, coherence opts @{ */
inline constexpr Row fig4BlkDma = {0.49, 0.39, 0.45, 0.63};
inline constexpr Row fig4BCohReloc = {0.46, 0.38, 0.37, 0.60};
inline constexpr Row fig4BCohRelUp = {0.39, 0.34, 0.31, 0.56};
/** @} */

/** @name Figure 5: normalized OS misses with hot-spot prefetch @{ */
inline constexpr Row fig5BCohRelUp = {0.39, 0.34, 0.31, 0.56};
inline constexpr Row fig5BCPref = {0.27, 0.21, 0.26, 0.28};
/** Hot-spot share of remaining misses (Section 6 text). */
inline constexpr Row hotspotShare = {29.0, 44.0, 22.0, 51.0};
/** @} */

/** Headline: average OS speedup of all optimizations combined (%). */
inline constexpr double headlineSpeedup = 19.0;
/** Headline: average OS misses eliminated or hidden (%). */
inline constexpr double headlineMissReduction = 75.0;

} // namespace paper
} // namespace oscache

#endif // OSCACHE_REPORT_PAPER_HH
