/**
 * @file
 * Fixed-width ASCII table and bar-chart rendering for the benchmark
 * harness: every bench binary prints the rows/series of the paper's
 * table or figure it regenerates, alongside the paper's numbers.
 */

#ifndef OSCACHE_REPORT_TABLE_HH
#define OSCACHE_REPORT_TABLE_HH

#include <string>
#include <vector>

namespace oscache
{

/**
 * A simple left-column-labelled table with fixed-width data columns.
 */
class TextTable
{
  public:
    /**
     * @param title   Printed above the table.
     * @param columns Data-column headers (e.g., workload names).
     */
    TextTable(std::string title, std::vector<std::string> columns);

    /** Append a row of preformatted cells. */
    void addRow(const std::string &label, std::vector<std::string> cells);

    /** Append a row of values formatted with @p decimals places. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int decimals = 1);

    /** Append a visual separator row. */
    void addSeparator();

    /** Render to a string. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    struct Row
    {
        bool separator = false;
        std::string label;
        std::vector<std::string> cells;
    };

    std::string title;
    std::vector<std::string> columns;
    std::vector<Row> rows;
};

/** Format @p value with @p decimals decimal places. */
std::string formatValue(double value, int decimals = 1);

/**
 * Render one horizontal bar (for figure-style output), scaled so
 * @p full maps to @p width characters.
 */
std::string bar(double value, double full, unsigned width = 40);

} // namespace oscache

#endif // OSCACHE_REPORT_TABLE_HH
