#include "serve/cellrun.hh"

#include "exp/hash.hh"
#include "exp/results.hh"
#include "report/experiment.hh"
#include "sample/plan.hh"
#include "sample/run.hh"
#include "trace/io.hh"

namespace oscache::serve
{

std::optional<CellRef>
findCell(const std::string &experiment, const std::string &cell)
{
    const Experiment *exp = findExperiment(experiment);
    if (exp == nullptr)
        return std::nullopt;
    for (const CellSpec &spec : exp->cells)
        if (spec.id == cell)
            return CellRef{exp, &spec};
    return std::nullopt;
}

std::string
workKeyFor(const CellRef &ref, const std::string &sample_plan)
{
    ContentHash h;
    h.mix(traceBinaryVersion);
    if (!ref.spec->sharedKey.empty()) {
        h.mix(std::string("shared"));
        h.mix(ref.spec->sharedKey);
    } else {
        h.mix(std::string("cell"));
        h.mix(ref.experiment->name);
        h.mix(ref.spec->id);
    }
    mixMachine(h, ref.spec->machine);
    h.mix(sample_plan);
    return h.hex();
}

std::string
identityJsonFor(const CellRef &ref)
{
    ContentHash mh;
    mixMachine(mh, ref.spec->machine);
    ResultRow row;
    row.experiment = ref.experiment->name;
    row.cell = ref.spec->id;
    row.workload = toString(ref.spec->workload);
    row.system = toString(ref.spec->system);
    row.machineHash = mh.hex();
    return resultRowIdentityJson(row);
}

std::string
runCellCanonical(const CellRef &ref, const std::string &sample_plan)
{
    // The sampling plan is per-assignment: install it for this cell
    // only, and always restore, even when the body throws.
    struct PlanGuard
    {
        bool active = false;
        ~PlanGuard()
        {
            if (active)
                sample::setGlobalSamplingPlan(std::nullopt);
        }
    } guard;
    if (!sample_plan.empty()) {
        sample::setGlobalSamplingPlan(
            sample::SamplingPlan::parse(sample_plan));
        guard.active = true;
    }

    CellOutcome outcome;
    if (ref.spec->body)
        outcome = ref.spec->body();
    else
        outcome.run = runWorkload(ref.spec->workload, ref.spec->system,
                                  ref.spec->machine);

    ResultRow row;
    row.canonical = true;
    row.outcome = &outcome;
    return resultRowOutcomeJson(row);
}

} // namespace oscache::serve
