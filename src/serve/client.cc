#include "serve/client.hh"

namespace oscache::serve
{

bool
ServeClient::connect(const std::string &path, std::string *error)
{
    conn = Conn::connectTo(path, error);
    return conn.valid();
}

SubmitOutcome
ServeClient::submit(const SubmitRequest &request,
                    const std::function<void(const Json &)> &on_event)
{
    SubmitOutcome outcome;
    if (!conn.valid()) {
        outcome.error = "not connected";
        return outcome;
    }

    Json frame = Json::object();
    frame.set("type", "submit");
    if (!request.experiments.empty()) {
        Json names = Json::array();
        for (const std::string &name : request.experiments)
            names.push(name);
        frame.set("experiments", std::move(names));
    }
    if (!request.cells.empty()) {
        Json cells = Json::array();
        for (const auto &[experiment, cell] : request.cells) {
            Json entry = Json::object();
            entry.set("experiment", experiment);
            entry.set("cell", cell);
            cells.push(std::move(entry));
        }
        frame.set("cells", std::move(cells));
    }
    if (request.smoke)
        frame.set("smoke", true);
    if (!request.samplePlan.empty())
        frame.set("sample", request.samplePlan);

    if (!conn.sendFrame(frame.dump())) {
        outcome.error = "send failed";
        return outcome;
    }

    while (true) {
        Json message;
        bool parse_ok = false;
        std::string parse_error;
        const FrameResult r =
            conn.recvJson(message, parse_ok, &parse_error);
        if (r != FrameResult::Ok) {
            outcome.error =
                std::string("connection lost (") + toString(r) + ")";
            return outcome;
        }
        if (!parse_ok) {
            outcome.error = "bad frame from daemon: " + parse_error;
            return outcome;
        }
        const std::string &type = message.get("type").asString();
        if (type == "accepted") {
            outcome.job = std::uint64_t(message.get("job").asInt());
            outcome.cellsExpected =
                unsigned(message.get("cells").asInt());
        } else if (type == "cell") {
            outcome.rows.push_back(message.get("row").asString());
            if (on_event)
                on_event(message);
        } else if (type == "cell-error") {
            outcome.cellErrors.push_back(
                message.get("experiment").asString() + ":" +
                message.get("cell").asString() + ": " +
                message.get("error").asString());
            if (on_event)
                on_event(message);
        } else if (type == "done") {
            outcome.completed = true;
            outcome.cellsFailed =
                unsigned(message.get("failed").asInt());
            return outcome;
        } else if (type == "retry-after") {
            outcome.retryAfterSeconds =
                unsigned(message.get("seconds").asInt(1));
            if (outcome.retryAfterSeconds == 0)
                outcome.retryAfterSeconds = 1;
            return outcome;
        } else if (type == "error") {
            outcome.error = message.get("error").asString();
            return outcome;
        }
        // Unknown frame types are skipped: forward compatibility.
    }
}

bool
ServeClient::ping()
{
    if (!conn.valid())
        return false;
    Json frame = Json::object();
    frame.set("type", "ping");
    if (!conn.sendFrame(frame.dump()))
        return false;
    Json reply;
    bool parse_ok = false;
    if (conn.recvJson(reply, parse_ok) != FrameResult::Ok || !parse_ok)
        return false;
    return reply.get("type").asString() == "pong";
}

Json
ServeClient::status()
{
    if (!conn.valid())
        return Json();
    Json frame = Json::object();
    frame.set("type", "status");
    if (!conn.sendFrame(frame.dump()))
        return Json();
    Json reply;
    bool parse_ok = false;
    if (conn.recvJson(reply, parse_ok) != FrameResult::Ok || !parse_ok)
        return Json();
    if (reply.get("type").asString() != "status-reply")
        return Json();
    return reply;
}

bool
ServeClient::drain()
{
    if (!conn.valid())
        return false;
    Json frame = Json::object();
    frame.set("type", "drain");
    if (!conn.sendFrame(frame.dump()))
        return false;
    while (true) {
        Json reply;
        bool parse_ok = false;
        if (conn.recvJson(reply, parse_ok) != FrameResult::Ok)
            return false;
        if (parse_ok && reply.get("type").asString() == "drained")
            return true;
    }
}

} // namespace oscache::serve
