#include "serve/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace oscache::serve
{

bool
ShardScheduler::submit(std::uint64_t job,
                       const std::vector<CellRequest> &cells,
                       SchedulerEffects &effects)
{
    // First pass: count the genuinely new tasks against the queue cap
    // before mutating anything, so a refused submit leaves no trace.
    std::size_t fresh = 0;
    {
        // Duplicate keys inside one submit alias the same task.
        std::vector<const std::string *> seen;
        for (const CellRequest &cell : cells) {
            if (tasks.find(cell.key) != tasks.end())
                continue;
            const bool dup =
                std::any_of(seen.begin(), seen.end(),
                            [&cell](const std::string *k) {
                                return *k == cell.key;
                            });
            if (!dup) {
                seen.push_back(&cell.key);
                ++fresh;
            }
        }
    }
    if (queued.size() + fresh > cfg.maxQueuedCells)
        return false;

    JobState &state = jobs[job];
    state.cells += unsigned(cells.size());

    for (const CellRequest &cell : cells) {
        auto it = tasks.find(cell.key);
        if (it == tasks.end()) {
            Task task;
            task.experiment = cell.experiment;
            task.cell = cell.cell;
            task.samplePlan = cell.samplePlan;
            it = tasks.emplace(cell.key, std::move(task)).first;
            queued.push_back(cell.key);
        }
        Task &task = it->second;
        const Subscriber sub{job, cell.experiment, cell.cell};
        switch (task.state) {
          case TaskState::Queued:
          case TaskState::Running:
              task.subscribers.push_back(sub);
              state.remaining += 1;
              if (task.subscribers.size() > 1)
                  sharedCount += 1;
              break;
          case TaskState::Done:
          case TaskState::Quarantined:
              // Already settled: emit immediately, job not blocked.
              sharedCount += 1;
              emitFor(task, cell.key, sub, /*shared=*/true, effects);
              if (task.state == TaskState::Quarantined)
                  state.failed += 1;
              break;
        }
    }

    if (state.remaining == 0) {
        effects.completedJobs.push_back(
            JobSummary{job, state.cells, state.failed});
        jobs.erase(job);
    }
    return true;
}

std::optional<Assignment>
ShardScheduler::assignNext(const std::string &worker, std::uint64_t now_ms)
{
    for (auto it = queued.begin(); it != queued.end(); ++it) {
        auto task_it = tasks.find(*it);
        if (task_it == tasks.end() ||
            task_it->second.state != TaskState::Queued) {
            // Settled while queued (cancel/quarantine path): drop.
            it = queued.erase(it);
            if (it == queued.end())
                break;
            --it;
            continue;
        }
        Task &task = task_it->second;
        if (task.notBeforeMs > now_ms)
            continue; // backing off; later entries may still be ready
        Assignment assignment;
        assignment.key = *it;
        assignment.experiment = task.experiment;
        assignment.cell = task.cell;
        assignment.samplePlan = task.samplePlan;
        assignment.attempt = task.attempts + 1;
        task.state = TaskState::Running;
        task.worker = worker;
        task.attempts += 1;
        queued.erase(it);
        return assignment;
    }
    return std::nullopt;
}

SchedulerEffects
ShardScheduler::onResult(const std::string &worker, const std::string &key,
                         bool ok, const std::string &fragment, bool cached,
                         const std::string &error, std::uint64_t now_ms)
{
    SchedulerEffects effects;
    const auto it = tasks.find(key);
    if (it == tasks.end())
        return effects;
    Task &task = it->second;
    if (task.state != TaskState::Running || task.worker != worker)
        return effects; // stale: key was re-queued past this worker
    task.worker.clear();
    if (ok) {
        task.state = TaskState::Done;
        task.fragment = fragment;
        task.cached = cached;
        settle(key, task, effects, now_ms);
    } else {
        requeueOrQuarantine(key, task, error, effects, now_ms);
    }
    return effects;
}

SchedulerEffects
ShardScheduler::onWorkerGone(const std::string &worker,
                             std::uint64_t now_ms)
{
    SchedulerEffects effects;
    for (auto &[key, task] : tasks) {
        if (task.state == TaskState::Running && task.worker == worker) {
            task.worker.clear();
            requeueOrQuarantine(key, task, "worker died", effects,
                                now_ms);
        }
    }
    return effects;
}

std::optional<std::uint64_t>
ShardScheduler::nextWakeMs() const
{
    std::optional<std::uint64_t> earliest;
    for (const std::string &key : queued) {
        const auto it = tasks.find(key);
        if (it == tasks.end() || it->second.state != TaskState::Queued)
            continue;
        const std::uint64_t t = it->second.notBeforeMs;
        if (!earliest.has_value() || t < *earliest)
            earliest = t;
    }
    return earliest;
}

std::size_t
ShardScheduler::runningCount() const
{
    std::size_t n = 0;
    for (const auto &[key, task] : tasks) {
        (void)key;
        if (task.state == TaskState::Running)
            ++n;
    }
    return n;
}

void
ShardScheduler::emitFor(const Task &task, const std::string &key,
                        const Subscriber &sub, bool shared,
                        SchedulerEffects &effects)
{
    Emission emission;
    emission.job = sub.job;
    emission.experiment = sub.experiment;
    emission.cell = sub.cell;
    emission.key = key;
    emission.fragment = task.fragment;
    emission.failed = task.state == TaskState::Quarantined;
    emission.error = task.error;
    emission.cached = task.cached;
    emission.shared = shared;
    effects.emissions.push_back(std::move(emission));
}

void
ShardScheduler::creditJob(std::uint64_t job, bool failed,
                          SchedulerEffects &effects)
{
    const auto it = jobs.find(job);
    if (it == jobs.end())
        return;
    JobState &state = it->second;
    if (state.remaining > 0)
        state.remaining -= 1;
    if (failed)
        state.failed += 1;
    if (state.remaining == 0) {
        effects.completedJobs.push_back(
            JobSummary{job, state.cells, state.failed});
        jobs.erase(it);
    }
}

void
ShardScheduler::settle(const std::string &key, Task &task,
                       SchedulerEffects &effects, std::uint64_t now_ms)
{
    (void)now_ms;
    const bool failed = task.state == TaskState::Quarantined;
    bool first = true;
    for (const Subscriber &sub : task.subscribers) {
        emitFor(task, key, sub, /*shared=*/!first, effects);
        creditJob(sub.job, failed, effects);
        first = false;
    }
    task.subscribers.clear();
}

void
ShardScheduler::requeueOrQuarantine(const std::string &key, Task &task,
                                    const std::string &why,
                                    SchedulerEffects &effects,
                                    std::uint64_t now_ms)
{
    if (task.attempts >= cfg.maxAttempts) {
        task.state = TaskState::Quarantined;
        task.error = why;
        quarantineCount += 1;
        effects.quarantined.push_back(key);
        settle(key, task, effects, now_ms);
        return;
    }
    retryCount += 1;
    std::uint64_t backoff = cfg.backoffMs;
    for (unsigned i = 1; i < task.attempts && backoff < cfg.backoffCapMs;
         ++i)
        backoff *= 2;
    task.state = TaskState::Queued;
    task.notBeforeMs = now_ms + std::min(backoff, cfg.backoffCapMs);
    queued.push_back(key);
}

} // namespace oscache::serve
