/**
 * @file
 * Worker-process entry point for the sharded experiment fleet.
 *
 * A worker is one process: it connects back to the daemon's socket,
 * identifies itself with the spawn token, then loops — receive an
 * assignment, execute it under the cross-process claim discipline,
 * send the result.  A background thread heartbeats so the
 * coordinator can tell a wedged (SIGSTOP'd, D-state) worker from a
 * busy one; a SIGKILL'd worker is detected faster still, by EOF.
 *
 * Claim discipline per assignment:
 *  1. result cache hit -> answer without simulating (this is how a
 *     double-submitted cell, or a re-run over a warm store, costs
 *     nothing);
 *  2. claim won -> simulate, store the result, release, answer;
 *  3. claim lost -> someone else (possibly in another daemon) is
 *     computing the same cell: poll for their result, breaking the
 *     claim if its owner turns out to be dead.
 */

#ifndef OSCACHE_SERVE_WORKER_HH
#define OSCACHE_SERVE_WORKER_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace oscache::serve
{

struct WorkerOptions
{
    std::string socketPath;
    std::string token;
    /** Shared store root (traces at top, claims/ and results/ under). */
    std::string storeDir;
    /** Stream records through cursors (bounded memory). */
    bool stream = false;
    std::size_t streamBufferRecords = 4096;
    /** Heartbeat period. */
    std::uint64_t heartbeatMs = 500;
    /** Cap on waiting for a foreign claim's result. */
    std::uint64_t claimWaitMs = 600000;
    /** Identity used in claim records and logs, e.g. "worker-3". */
    std::string name = "worker";
};

/** Run the worker loop; returns the process exit code. */
int runWorker(const WorkerOptions &options);

} // namespace oscache::serve

#endif // OSCACHE_SERVE_WORKER_HH
