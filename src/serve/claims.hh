/**
 * @file
 * Cross-process cell claims and the on-disk result cache.
 *
 * The sharding layer's invariant — every distinct cell simulated
 * exactly once — has two halves.  Inside one daemon the coordinator
 * keys in-flight cells by content key (the cross-process extension
 * of the in-memory shared-future latch in report/experiment.cc).
 * Across processes (several workers, or a concurrent oscache-bench
 * sharing the store directory) the arbiter is a *claim file*:
 * `claim_<key>.lock`, created with O_CREAT|O_EXCL, holding a JSON
 * record of the owner (pid, worker id, start time).  Exactly one
 * creator wins; losers either wait for the result file to appear or
 * report the conflict upward.
 *
 * Crash-safety: a claim whose owner pid is dead is *stale* and may
 * be broken by anyone (the coordinator breaks its own dead workers'
 * claims eagerly on reap, so a SIGKILL'd worker's cells re-run
 * immediately rather than after a TTL).
 *
 * Results are cached as `result_<key>.json`: the canonical JSONL
 * stats row plus identity metadata, written temp+rename so readers
 * never observe a torn entry — the same discipline as the trace
 * artifact cache, with which this shares a directory.
 */

#ifndef OSCACHE_SERVE_CLAIMS_HH
#define OSCACHE_SERVE_CLAIMS_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hh"

namespace oscache::serve
{

/** Parsed contents of one claim file. */
struct ClaimRecord
{
    long pid = 0;
    std::string owner; ///< free-form, e.g. "worker-3"
    /** Steady-ish wall clock (seconds since epoch) at claim time. */
    std::int64_t claimedAt = 0;
};

/** File-lock claim records over one directory. */
class ClaimStore
{
  public:
    /** fatal()s if @p directory cannot be created. */
    explicit ClaimStore(std::string directory);

    /**
     * Try to claim @p key for @p owner.  True exactly once per key
     * until release — across every process sharing the directory.
     */
    bool tryClaim(const std::string &key, const std::string &owner);

    /** Read the current claim on @p key, if any (and parseable). */
    std::optional<ClaimRecord> read(const std::string &key) const;

    /** Release @p key (unlink; idempotent). */
    void release(const std::string &key);

    /**
     * Break the claim on @p key if its owner process is dead (or the
     * record is unparseable).  True if the key is now unclaimed.
     */
    bool breakIfStale(const std::string &key);

    std::string pathFor(const std::string &key) const;
    const std::string &directory() const { return root; }

    /** @name Counters (process lifetime) @{ */
    std::uint64_t claims() const { return claimCount.load(); }
    std::uint64_t conflicts() const { return conflictCount.load(); }
    std::uint64_t broken() const { return brokenCount.load(); }
    /** @} */

  private:
    std::string root;
    std::atomic<std::uint64_t> claimCount{0};
    std::atomic<std::uint64_t> conflictCount{0};
    std::atomic<std::uint64_t> brokenCount{0};
};

/** One cached cell result. */
struct CachedResult
{
    /** Canonical JSONL line (resultRowJsonl with canonical=true). */
    std::string row;
    /** Content key it was stored under. */
    std::string key;
};

/** Disk-backed cache of canonical cell-result rows. */
class ResultCache
{
  public:
    /** fatal()s if @p directory cannot be created. */
    explicit ResultCache(std::string directory);

    /** Load the result stored under @p key; nullopt if absent/torn. */
    std::optional<CachedResult> load(const std::string &key);

    /** Store @p row under @p key (temp + atomic rename). */
    void store(const std::string &key, const std::string &row);

    std::string pathFor(const std::string &key) const;

    /** @name Counters (process lifetime) @{ */
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    /** @} */

  private:
    std::string root;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
};

} // namespace oscache::serve

#endif // OSCACHE_SERVE_CLAIMS_HH
