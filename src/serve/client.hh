/**
 * @file
 * Client side of the oscache-served protocol.
 *
 * A thin, synchronous wrapper over the framed-JSON connection: build
 * a request, stream the reply frames back through a callback, return
 * a digested outcome.  Used by `oscache-servectl`, by the protocol
 * tests (over socketpairs and real daemons alike), and by anything
 * else that wants experiment rows out of a running daemon.
 *
 * Backpressure is surfaced, not hidden: a submit the daemon refuses
 * comes back with retryAfterSeconds set, and the *caller* decides to
 * wait and retry (servectl does, with a bounded loop) — an invisible
 * internal retry would make client-observable queue limits
 * untestable.
 */

#ifndef OSCACHE_SERVE_CLIENT_HH
#define OSCACHE_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/ipc.hh"

namespace oscache::serve
{

/** One submit request (experiments and/or explicit cells). */
struct SubmitRequest
{
    /** Experiment names/groups ("figure3", "all", "figures", ...). */
    std::vector<std::string> experiments;
    /** Explicit (experiment, cell) pairs. */
    std::vector<std::pair<std::string, std::string>> cells;
    /** Only each experiment's designated smoke cell. */
    bool smoke = false;
    /** Sampling plan text; empty = full replay. */
    std::string samplePlan;
};

/** Digested result of one submit exchange. */
struct SubmitOutcome
{
    /** The daemon accepted and ran the job to completion. */
    bool completed = false;
    /** Refused with backpressure; retry after this many seconds. */
    unsigned retryAfterSeconds = 0;
    /** Protocol or request error (empty when none). */
    std::string error;
    std::uint64_t job = 0;
    unsigned cellsExpected = 0;
    unsigned cellsFailed = 0;
    /** Canonical JSONL rows, in arrival order. */
    std::vector<std::string> rows;
    /** Per-cell failure messages ("experiment:cell: error"). */
    std::vector<std::string> cellErrors;
};

class ServeClient
{
  public:
    ServeClient() = default;

    /** Connect to the daemon socket at @p path. */
    bool connect(const std::string &path, std::string *error = nullptr);

    /** Adopt an existing connection (socketpair protocol tests). */
    void adopt(Conn c) { conn = std::move(c); }

    bool connected() const { return conn.valid(); }
    Conn &connection() { return conn; }

    /**
     * Submit and stream: sends the request, then consumes frames
     * until done / error / retry-after.  @p on_event (when set) sees
     * every incremental frame — "cell" and "cell-error" — as it
     * arrives, before the digested outcome returns.
     */
    SubmitOutcome
    submit(const SubmitRequest &request,
           const std::function<void(const Json &)> &on_event = {});

    /** Round-trip a ping; false when the daemon is unreachable. */
    bool ping();

    /** Fetch the daemon's status reply; Null Json on failure. */
    Json status();

    /** Request a drain and wait for the "drained" acknowledgement. */
    bool drain();

  private:
    Conn conn;
};

} // namespace oscache::serve

#endif // OSCACHE_SERVE_CLIENT_HH
