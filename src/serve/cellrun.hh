/**
 * @file
 * Single-cell execution for worker processes.
 *
 * The coordinator ships a cell as (experiment name, cell id): every
 * process links the same registry, so identity is enough — custom
 * cell bodies travel as code, not data.  A worker resolves the
 * reference, computes the cell's *work key* (the claim-file /
 * result-cache key: sharedKey when the registry marked the cell as
 * shared work, else its own identity, mixed with the machine hash,
 * the trace-format version, and the sampling plan), runs it, and
 * renders the canonical outcome fragment that composes into
 * byte-identical JSONL rows on the coordinator side.
 */

#ifndef OSCACHE_SERVE_CELLRUN_HH
#define OSCACHE_SERVE_CELLRUN_HH

#include <optional>
#include <string>

#include "exp/registry.hh"

namespace oscache::serve
{

/** A resolved registry cell. */
struct CellRef
{
    const Experiment *experiment = nullptr;
    const CellSpec *spec = nullptr;
};

/** Resolve (@p experiment, @p cell); nullopt when either is unknown. */
std::optional<CellRef> findCell(const std::string &experiment,
                                const std::string &cell);

/**
 * The cross-process dedup key for @p ref under @p sample_plan (empty
 * = full replay).  Cells sharing a registry sharedKey map to one
 * work key; custom cells key on their own identity, so double-
 * submits still coalesce.
 */
std::string workKeyFor(const CellRef &ref, const std::string &sample_plan);

/** '{"experiment":...' identity prefix for one subscriber alias. */
std::string identityJsonFor(const CellRef &ref);

/**
 * Run the cell (under the caller-installed trace hooks and the given
 * sampling plan, if any) and return the canonical outcome fragment
 * (resultRowOutcomeJson with canonical=true).  Throws whatever the
 * cell body throws.
 */
std::string runCellCanonical(const CellRef &ref,
                             const std::string &sample_plan);

} // namespace oscache::serve

#endif // OSCACHE_SERVE_CELLRUN_HH
