#include "serve/worker.hh"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/ipc.hh"
#include "common/log.hh"
#include "exp/artifact_cache.hh"
#include "report/experiment.hh"
#include "serve/cellrun.hh"
#include "serve/claims.hh"

namespace oscache::serve
{

namespace
{

std::uint64_t
nowMs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Guards every sendFrame: heartbeats interleave with results. */
struct SharedConn
{
    Conn conn;
    std::mutex mutex;

    bool
    send(const Json &message)
    {
        std::lock_guard<std::mutex> lock(mutex);
        return conn.sendJson(message);
    }
};

/** Execute one assignment under the claim discipline. */
Json
processAssignment(const Json &assign, const WorkerOptions &options,
                  ClaimStore &claims, ResultCache &results)
{
    const std::string key = assign.get("key").asString();
    const std::string experiment = assign.get("experiment").asString();
    const std::string cell = assign.get("cell").asString();
    const std::string plan = assign.get("sample").asString();

    Json reply = Json::object();
    reply.set("type", "result");
    reply.set("key", key);

    const auto ref = findCell(experiment, cell);
    if (!ref.has_value()) {
        reply.set("ok", false);
        reply.set("error",
                  "unknown cell " + experiment + ":" + cell);
        return reply;
    }

    // 1. Served from the shared result cache: no simulation.
    if (const auto cached = results.load(key)) {
        reply.set("ok", true);
        reply.set("row", cached->row);
        reply.set("cached", true);
        return reply;
    }

    const std::uint64_t wait_deadline = nowMs() + options.claimWaitMs;
    std::uint64_t next_stale_check = 0;
    while (true) {
        // 2. Claim won: we compute.
        if (claims.tryClaim(key, options.name)) {
            std::string fragment;
            try {
                fragment = runCellCanonical(*ref, plan);
            } catch (const std::exception &e) {
                claims.release(key);
                reply.set("ok", false);
                reply.set("error", e.what());
                return reply;
            }
            results.store(key, fragment);
            claims.release(key);
            reply.set("ok", true);
            reply.set("row", fragment);
            reply.set("cached", false);
            return reply;
        }
        // 3. Claim lost: a peer is computing.  Wait for its result,
        // breaking the claim if the peer is dead.
        if (const auto cached = results.load(key)) {
            reply.set("ok", true);
            reply.set("row", cached->row);
            reply.set("cached", true);
            return reply;
        }
        const std::uint64_t now = nowMs();
        if (now >= wait_deadline) {
            reply.set("ok", false);
            reply.set("error", "timed out waiting on foreign claim");
            return reply;
        }
        if (now >= next_stale_check) {
            next_stale_check = now + 1000;
            if (claims.breakIfStale(key))
                continue; // dead owner: claim freed, try again now
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

} // namespace

int
runWorker(const WorkerOptions &options)
{
    ::signal(SIGPIPE, SIG_IGN);

    TraceStore store(options.storeDir);
    ClaimStore claims(options.storeDir + "/claims");
    ResultCache results(options.storeDir + "/results");

    // Same hook wiring as the in-process driver: the shared on-disk
    // artifact cache sits under the in-memory trace cache, and in
    // stream mode misses generate straight to chunked artifacts.
    setTraceSourceMode(options.stream ? TraceSourceMode::Streamed
                                      : TraceSourceMode::Materialized);
    setStreamReadAhead(options.streamBufferRecords);
    TraceStore *store_ptr = &store;
    setTraceCacheHooks(
        [store_ptr](WorkloadKind w, const CoherenceOptions &o,
                    unsigned cpus) {
            return store_ptr->load(TraceStore::keyFor(
                WorkloadProfile::forKind(w), o, cpus));
        },
        [store_ptr](WorkloadKind w, const CoherenceOptions &o,
                    unsigned cpus, const Trace &t) {
            store_ptr->store(TraceStore::keyFor(
                                 WorkloadProfile::forKind(w), o, cpus),
                             t);
        });
    if (options.stream) {
        const std::size_t read_ahead = options.streamBufferRecords;
        setTraceSourceHook(
            [store_ptr, read_ahead](WorkloadKind w,
                                    const CoherenceOptions &o,
                                    unsigned cpus)
                -> std::unique_ptr<TraceSource> {
                const WorkloadProfile profile = WorkloadProfile::forKind(w);
                const std::string key =
                    TraceStore::keyFor(profile, o, cpus);
                if (auto source = store_ptr->openSource(key, read_ahead))
                    return source;
                store_ptr->storeStreaming(key, profile, o, cpus);
                return store_ptr->openSource(key, read_ahead);
            });
    }

    SharedConn shared;
    std::string error;
    shared.conn = Conn::connectTo(options.socketPath, &error);
    if (!shared.conn.valid()) {
        warn("worker: cannot connect to '", options.socketPath, "': ",
             error);
        return 1;
    }

    Json hello = Json::object();
    hello.set("type", "hello");
    hello.set("role", "worker");
    hello.set("token", options.token);
    hello.set("pid", std::int64_t(::getpid()));
    hello.set("name", options.name);
    if (!shared.send(hello))
        return 1;

    // Heartbeats from a separate thread: they keep flowing while the
    // main thread simulates, so the coordinator can distinguish
    // "busy" from "stopped/wedged" (a stopped process stops beating).
    std::atomic<bool> stop{false};
    std::thread heartbeat([&shared, &stop, &options] {
        Json beat = Json::object();
        beat.set("type", "heartbeat");
        while (!stop.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options.heartbeatMs));
            if (stop.load())
                break;
            if (!shared.send(beat))
                break; // daemon gone; main loop will notice too
        }
    });

    int exit_code = 0;
    while (true) {
        Json message;
        bool parse_ok = false;
        const FrameResult r =
            shared.conn.recvJson(message, parse_ok);
        if (r != FrameResult::Ok) {
            // Daemon went away (shutdown or crash): quiet exit.
            exit_code = r == FrameResult::Closed ? 0 : 1;
            break;
        }
        if (!parse_ok)
            continue; // daemon never sends malformed frames
        const std::string &type = message.get("type").asString();
        if (type == "shutdown")
            break;
        if (type == "assign") {
            Json reply =
                processAssignment(message, options, claims, results);
            if (!shared.send(reply)) {
                exit_code = 1;
                break;
            }
        }
    }

    stop.store(true);
    heartbeat.join();
    return exit_code;
}

} // namespace oscache::serve
