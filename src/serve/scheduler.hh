/**
 * @file
 * The sharding scheduler: pure bookkeeping, no I/O, no clock.
 *
 * The daemon's event loop owns sockets and processes; this class
 * owns the hard part — which cell runs where, exactly once — as a
 * deterministic state machine driven by explicit events
 * (submit / assign / result / worker-gone) and an injected
 * millisecond timestamp.  That split is what makes the failure
 * model testable: the unit tests replay worker crashes, retry
 * storms, and quarantine thresholds without forking a single
 * process.
 *
 * Invariants:
 *  - one Task per work key, however many (job, experiment, cell)
 *    subscribers alias it — the in-daemon half of the exactly-once
 *    story (claim files are the cross-process half);
 *  - a task whose worker dies is re-queued with exponential backoff
 *    and retried at most maxAttempts times, then quarantined
 *    (poisoned cells must not wedge the fleet in a retry loop);
 *  - a job completes exactly when every subscribed task has either
 *    a result or a quarantine verdict.
 */

#ifndef OSCACHE_SERVE_SCHEDULER_HH
#define OSCACHE_SERVE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace oscache::serve
{

/** One (experiment, cell) a job wants computed. */
struct CellRequest
{
    std::string key; ///< work key (claim/result-cache key)
    std::string experiment;
    std::string cell;
    std::string samplePlan; ///< empty = full replay
};

/** One row owed to one job. */
struct Emission
{
    std::uint64_t job = 0;
    std::string experiment;
    std::string cell;
    std::string key;
    /** Canonical outcome fragment; empty when failed. */
    std::string fragment;
    bool failed = false;
    std::string error;
    /** The computing run was served from the on-disk result cache. */
    bool cached = false;
    /** Another in-flight/done task satisfied this subscriber. */
    bool shared = false;
};

/** Terminal accounting for one job. */
struct JobSummary
{
    std::uint64_t job = 0;
    unsigned cells = 0;
    unsigned failed = 0;
};

/** What one scheduler event produced. */
struct SchedulerEffects
{
    std::vector<Emission> emissions;
    std::vector<JobSummary> completedJobs;
    /** Keys quarantined by this event (report + claim cleanup). */
    std::vector<std::string> quarantined;
};

/** One cell handed to a worker. */
struct Assignment
{
    std::string key;
    std::string experiment;
    std::string cell;
    std::string samplePlan;
    unsigned attempt = 1;
};

/** Scheduler tuning (all times in milliseconds). */
struct SchedulerConfig
{
    /** Simulation attempts before a key is quarantined. */
    unsigned maxAttempts = 3;
    /** Base re-queue delay after a failure; doubles per attempt. */
    std::uint64_t backoffMs = 250;
    /** Backoff ceiling. */
    std::uint64_t backoffCapMs = 5000;
    /** Queued-cell cap: submits beyond it are refused (backpressure). */
    std::size_t maxQueuedCells = 4096;
};

class ShardScheduler
{
  public:
    explicit ShardScheduler(SchedulerConfig config = {}) : cfg(config) {}

    /**
     * Register job @p job's cells.  Returns false — and records
     * nothing — when admitting the genuinely new cells would push
     * the queue past maxQueuedCells (the caller answers
     * retry-after).  Aliases of in-flight or completed tasks never
     * count against the cap; effects may already carry emissions
     * (and even the job's completion) when every cell was already
     * done.
     */
    bool submit(std::uint64_t job,
                const std::vector<CellRequest> &cells,
                SchedulerEffects &effects);

    /** Next ready cell for @p worker, respecting backoff clocks. */
    std::optional<Assignment> assignNext(const std::string &worker,
                                         std::uint64_t now_ms);

    /**
     * Result for @p key from @p worker.  @p ok false counts as a
     * failed attempt (requeue or quarantine).  Stale results from a
     * worker the key is no longer assigned to are ignored — the key
     * was re-queued when that worker was declared gone, and the
     * replacement attempt is authoritative.
     */
    SchedulerEffects onResult(const std::string &worker,
                              const std::string &key, bool ok,
                              const std::string &fragment,
                              bool cached, const std::string &error,
                              std::uint64_t now_ms);

    /**
     * @p worker died or was declared wedged: re-queue (or
     * quarantine) everything assigned to it.
     */
    SchedulerEffects onWorkerGone(const std::string &worker,
                                  std::uint64_t now_ms);

    /** Earliest not-before among queued tasks (poll-tick hint). */
    std::optional<std::uint64_t> nextWakeMs() const;

    /** @name Introspection for the status reply @{ */
    std::size_t queueDepth() const { return queued.size(); }
    std::size_t runningCount() const;
    std::size_t activeJobs() const { return jobs.size(); }
    std::uint64_t totalRetries() const { return retryCount; }
    std::uint64_t totalQuarantined() const { return quarantineCount; }
    std::uint64_t totalSharedHits() const { return sharedCount; }
    /** @} */

  private:
    enum class TaskState
    {
        Queued,
        Running,
        Done,
        Quarantined,
    };

    struct Subscriber
    {
        std::uint64_t job = 0;
        std::string experiment;
        std::string cell;
    };

    struct Task
    {
        TaskState state = TaskState::Queued;
        std::string experiment; ///< representative identity
        std::string cell;
        std::string samplePlan;
        std::vector<Subscriber> subscribers;
        unsigned attempts = 0;
        std::uint64_t notBeforeMs = 0;
        std::string worker; ///< owner while Running
        std::string fragment;
        bool cached = false;
        std::string error;
    };

    struct JobState
    {
        unsigned remaining = 0;
        unsigned cells = 0;
        unsigned failed = 0;
    };

    /** Resolve @p key's terminal state into subscriber emissions. */
    void settle(const std::string &key, Task &task,
                SchedulerEffects &effects, std::uint64_t now_ms);
    void emitFor(const Task &task, const std::string &key,
                 const Subscriber &sub, bool shared,
                 SchedulerEffects &effects);
    void creditJob(std::uint64_t job, bool failed,
                   SchedulerEffects &effects);
    void requeueOrQuarantine(const std::string &key, Task &task,
                             const std::string &why,
                             SchedulerEffects &effects,
                             std::uint64_t now_ms);

    SchedulerConfig cfg;
    std::map<std::string, Task> tasks;
    std::deque<std::string> queued;
    std::map<std::uint64_t, JobState> jobs;
    std::uint64_t retryCount = 0;
    std::uint64_t quarantineCount = 0;
    std::uint64_t sharedCount = 0;
};

} // namespace oscache::serve

#endif // OSCACHE_SERVE_SCHEDULER_HH
