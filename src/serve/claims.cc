#include "serve/claims.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/log.hh"

namespace oscache::serve
{

namespace fs = std::filesystem;

namespace
{

std::int64_t
nowSeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Read a whole small file; nullopt on any error. */
std::optional<std::string>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    if (is.bad())
        return std::nullopt;
    return os.str();
}

void
ensureDirectory(const std::string &root, const char *what)
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        fatal(what, ": cannot create '", root, "': ", ec.message());
}

/** Write @p content to @p path via unique temp + atomic rename. */
bool
atomicWrite(const std::string &path, const std::string &content)
{
    static std::atomic<std::uint64_t> sequence{0};
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid() << "."
             << sequence.fetch_add(1);
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp,
                         std::ios::out | std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << content;
        if (!os) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

ClaimStore::ClaimStore(std::string directory) : root(std::move(directory))
{
    ensureDirectory(root, "claim store");
}

std::string
ClaimStore::pathFor(const std::string &key) const
{
    return root + "/claim_" + key + ".lock";
}

bool
ClaimStore::tryClaim(const std::string &key, const std::string &owner)
{
    // O_EXCL is the whole point: exactly one creator wins, atomically,
    // even across processes on the same directory.
    const int fd = ::open(pathFor(key).c_str(),
                          O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            conflictCount.fetch_add(1);
        return false;
    }
    Json record = Json::object();
    record.set("pid", std::int64_t(::getpid()));
    record.set("owner", owner);
    record.set("claimed_at", nowSeconds());
    const std::string body = record.dump() + "\n";
    const char *p = body.data();
    std::size_t left = body.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // claim still held; record just unparseable->stale
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    ::close(fd);
    claimCount.fetch_add(1);
    return true;
}

std::optional<ClaimRecord>
ClaimStore::read(const std::string &key) const
{
    const auto body = slurp(pathFor(key));
    if (!body.has_value())
        return std::nullopt;
    Json parsed;
    if (!Json::parse(*body, parsed) || !parsed.isObject())
        return std::nullopt;
    ClaimRecord record;
    record.pid = long(parsed.get("pid").asInt());
    record.owner = parsed.get("owner").asString();
    record.claimedAt = parsed.get("claimed_at").asInt();
    return record;
}

void
ClaimStore::release(const std::string &key)
{
    std::error_code ec;
    fs::remove(pathFor(key), ec);
}

bool
ClaimStore::breakIfStale(const std::string &key)
{
    const std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return true;
    const auto record = read(key);
    // Unparseable record (creator died mid-write, or hostile): stale.
    // Parseable: stale iff the owner pid is gone.  kill(pid, 0) with
    // ESRCH is the liveness probe; EPERM means alive-but-foreign.
    if (record.has_value() && record->pid > 0 &&
        (::kill(pid_t(record->pid), 0) == 0 || errno == EPERM))
        return false;
    fs::remove(path, ec);
    if (!ec)
        brokenCount.fetch_add(1);
    return !fs::exists(path, ec);
}

ResultCache::ResultCache(std::string directory) : root(std::move(directory))
{
    ensureDirectory(root, "result cache");
}

std::string
ResultCache::pathFor(const std::string &key) const
{
    return root + "/result_" + key + ".json";
}

std::optional<CachedResult>
ResultCache::load(const std::string &key)
{
    const auto body = slurp(pathFor(key));
    if (!body.has_value()) {
        missCount.fetch_add(1);
        return std::nullopt;
    }
    Json parsed;
    if (!Json::parse(*body, parsed) || !parsed.isObject() ||
        parsed.get("key").asString() != key ||
        !parsed.get("row").isString()) {
        // Torn or foreign entry: drop it so a writer can replace it.
        warn("result cache: rejecting corrupt '", pathFor(key), "'");
        std::error_code ec;
        fs::remove(pathFor(key), ec);
        missCount.fetch_add(1);
        return std::nullopt;
    }
    hitCount.fetch_add(1);
    CachedResult result;
    result.key = key;
    result.row = parsed.get("row").asString();
    return result;
}

void
ResultCache::store(const std::string &key, const std::string &row)
{
    Json entry = Json::object();
    entry.set("key", key);
    entry.set("row", row);
    if (!atomicWrite(pathFor(key), entry.dump() + "\n"))
        warn("result cache: cannot write '", pathFor(key), "'");
}

} // namespace oscache::serve
