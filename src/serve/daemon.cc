#include "serve/daemon.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <random>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "sample/plan.hh"
#include "serve/cellrun.hh"

namespace oscache::serve
{

namespace
{

volatile std::sig_atomic_t g_stop = 0;
/** Set by maybeFinishDrain(); tells run()'s loop to exit cleanly. */
bool g_finished = false;
/** Worker names stay unique across a daemon's whole lifetime. */
std::uint64_t g_workerSeq = 0;

void
onStopSignal(int)
{
    g_stop = 1;
}

std::uint64_t
nowMs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
makeToken()
{
    std::random_device rd;
    std::ostringstream os;
    os << std::hex << rd() << rd() << "." << ::getpid();
    return os.str();
}

/**
 * Non-exiting twin of resolveExperiments(): same names and group
 * semantics, but an unknown name sets @p error instead of fatal()ing
 * — a daemon must never die on a bad client request.
 */
std::vector<const Experiment *>
tryResolveExperiments(const std::vector<std::string> &names,
                      std::string &error)
{
    std::vector<const Experiment *> out;
    const auto add = [&out](const Experiment *e) {
        if (std::find(out.begin(), out.end(), e) == out.end())
            out.push_back(e);
    };
    for (const std::string &name : names) {
        if (name == "all") {
            for (const Experiment &e : experimentRegistry())
                add(&e);
        } else if (name == "figures" || name == "tables" ||
                   name == "ablations") {
            const std::string prefix =
                name.substr(0, name.size() - 1); // drop plural 's'
            for (const Experiment &e : experimentRegistry())
                if (e.name.rfind(prefix, 0) == 0)
                    add(&e);
        } else if (const Experiment *e = findExperiment(name)) {
            add(e);
        } else {
            error = "unknown experiment '" + name + "'";
            return {};
        }
    }
    return out;
}

} // namespace

Daemon::Daemon(DaemonOptions options)
    : opts(std::move(options)),
      spawnToken(makeToken()),
      scheduler(SchedulerConfig{opts.maxAttempts, opts.backoffMs,
                                opts.backoffCapMs, opts.maxQueuedCells}),
      claims(opts.storeDir + "/claims"),
      respawnsLeft(opts.respawnBudget),
      fleetMetrics(std::make_unique<MetricsRegistry>())
{
    // Register everything up front: a registry's layout freezes at
    // the first record.
    cellsSimulated = fleetMetrics->counter("serve.cells.simulated");
    cellsFromCache = fleetMetrics->counter("serve.cells.from_cache");
    cellsShared = fleetMetrics->counter("serve.cells.shared");
    cellsFailed = fleetMetrics->counter("serve.cells.failed");
    jobsSubmitted = fleetMetrics->counter("serve.jobs.submitted");
    jobsCompleted = fleetMetrics->counter("serve.jobs.completed");
    backpressureRejects =
        fleetMetrics->counter("serve.backpressure.rejects");
    framesIn = fleetMetrics->counter("serve.frames.in");
    framesOut = fleetMetrics->counter("serve.frames.out");
    workersRespawned = fleetMetrics->counter("serve.workers.respawned");
    malformedFrames = fleetMetrics->counter("serve.frames.malformed");
}

Daemon::~Daemon()
{
    // Don't leave orphaned workers behind whatever exit path we took.
    for (const SpawnedWorker &child : children)
        ::kill(pid_t(child.pid), SIGKILL);
    for (const SpawnedWorker &child : children)
        ::waitpid(pid_t(child.pid), nullptr, 0);
}

void
Daemon::requestStop()
{
    g_stop = 1;
}

bool
Daemon::spawnWorker()
{
    const std::string name = "worker-" + std::to_string(++g_workerSeq);
    const std::string exe =
        opts.workerExec.empty() ? "/proc/self/exe" : opts.workerExec;

    const pid_t pid = ::fork();
    if (pid < 0) {
        warn("served: fork failed for ", name);
        return false;
    }
    if (pid == 0) {
        std::vector<std::string> args = {
            exe,           "--worker", "--socket", opts.socketPath,
            "--token",     spawnToken, "--store",  opts.storeDir,
            "--name",      name,
        };
        if (opts.stream)
            args.push_back("--stream");
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(exe.c_str(), argv.data());
        ::_exit(127);
    }

    children.push_back(SpawnedWorker{long(pid), name});
    if (!opts.quiet)
        std::fprintf(stderr, "served: spawned %s (pid %ld)\n",
                     name.c_str(), long(pid));
    return true;
}

void
Daemon::declareWorkerGone(int peer_id, const char *why)
{
    const auto it = peers.find(peer_id);
    if (it == peers.end() || it->second.kind != Peer::Kind::Worker)
        return;
    Peer &peer = it->second;
    if (!opts.quiet)
        std::fprintf(stderr, "served: %s gone (%s)\n",
                     peer.workerName.c_str(), why);
    // The dead worker may still hold a claim on its assigned cell;
    // break it now so the retry does not wait out a foreign-claim
    // poll loop.
    if (!peer.assignedKey.empty())
        claims.breakIfStale(peer.assignedKey);
    const std::string worker = peer.workerName;
    dropPeer(peer_id);
    applyEffects(scheduler.onWorkerGone(worker, nowMs()));
}

void
Daemon::reapChildren()
{
    while (true) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            break;
        children.erase(
            std::remove_if(children.begin(), children.end(),
                           [pid](const SpawnedWorker &c) {
                               return c.pid == long(pid);
                           }),
            children.end());
        // If the worker's connection is still open we will also see
        // EOF, but reap first so a SIGKILL'd worker's cells re-queue
        // without waiting for the socket to drain.
        int gone = -1;
        for (const auto &[id, peer] : peers)
            if (peer.kind == Peer::Kind::Worker && peer.pid == long(pid))
                gone = id;
        if (gone >= 0)
            declareWorkerGone(gone, "process exited");
    }

    // Respawn up to the target fleet size, within the crash-loop
    // budget.  Initial spawns in run() are free; only replacements
    // consume the budget.
    while (children.size() < opts.workers && !draining) {
        if (respawnsLeft == 0) {
            static bool warned = false;
            if (!warned) {
                warned = true;
                warn("served: respawn budget exhausted; fleet stays "
                     "at ", children.size(), " worker(s)");
            }
            break;
        }
        --respawnsLeft;
        if (!spawnWorker())
            break;
        workersRespawned.add();
    }
}

void
Daemon::checkDeadlines(std::uint64_t now_ms)
{
    std::vector<std::pair<int, const char *>> victims;
    for (const auto &[id, peer] : peers) {
        if (peer.kind == Peer::Kind::Worker) {
            if (now_ms - peer.lastHeartbeatMs > opts.heartbeatTimeoutMs)
                victims.push_back({id, "heartbeat lost"});
            else if (peer.busy && now_ms > peer.assignmentDeadlineMs)
                victims.push_back({id, "cell deadline overrun"});
        } else if (peer.kind == Peer::Kind::Unknown) {
            // A connection that never says anything is not a worker
            // joining; just shed it.
            if (now_ms - peer.lastHeartbeatMs > opts.heartbeatTimeoutMs)
                victims.push_back({id, "never identified"});
        }
    }
    for (const auto &[id, why] : victims) {
        const auto it = peers.find(id);
        if (it == peers.end())
            continue;
        if (it->second.kind == Peer::Kind::Worker) {
            // Wedged (SIGSTOP'd, D-state, runaway): make the death
            // real before re-queueing its cell.
            ::kill(pid_t(it->second.pid), SIGKILL);
            declareWorkerGone(id, why);
        } else {
            dropPeer(id);
        }
    }
}

void
Daemon::dispatch(std::uint64_t now_ms)
{
    std::vector<int> idle;
    for (const auto &[id, peer] : peers)
        if (peer.kind == Peer::Kind::Worker && !peer.busy)
            idle.push_back(id);

    for (const int id : idle) {
        const auto it = peers.find(id);
        if (it == peers.end())
            continue;
        Peer &peer = it->second;
        const auto assignment =
            scheduler.assignNext(peer.workerName, now_ms);
        if (!assignment.has_value())
            break; // nothing ready (empty queue or all backing off)
        Json frame = Json::object();
        frame.set("type", "assign");
        frame.set("key", assignment->key);
        frame.set("experiment", assignment->experiment);
        frame.set("cell", assignment->cell);
        frame.set("sample", assignment->samplePlan);
        frame.set("attempt", std::int64_t(assignment->attempt));
        framesOut.add();
        if (!peer.conn.sendJson(frame)) {
            declareWorkerGone(id, "send failed");
            continue;
        }
        peer.busy = true;
        peer.assignedKey = assignment->key;
        peer.assignmentDeadlineMs = now_ms + opts.cellTimeoutMs;
    }
}

void
Daemon::applyEffects(const SchedulerEffects &effects)
{
    std::vector<int> dead;
    const auto sendTo = [this, &dead](std::uint64_t job,
                                      const Json &frame) {
        const auto jc = jobClients.find(job);
        if (jc == jobClients.end())
            return; // client disconnected mid-stream: job ran anyway
        const auto it = peers.find(jc->second);
        if (it == peers.end())
            return;
        framesOut.add();
        if (!it->second.conn.sendJson(frame))
            dead.push_back(jc->second);
    };

    for (const Emission &emission : effects.emissions) {
        Json frame = Json::object();
        if (emission.failed) {
            frame.set("type", "cell-error");
            frame.set("job", std::int64_t(emission.job));
            frame.set("experiment", emission.experiment);
            frame.set("cell", emission.cell);
            frame.set("error", emission.error);
        } else {
            // Compose the full canonical row: this subscriber's
            // identity prefix + the shared outcome fragment.  This
            // is how one simulated cell serves every sharedKey alias
            // with per-alias identity intact.
            const auto ref =
                findCell(emission.experiment, emission.cell);
            std::string row;
            if (ref.has_value())
                row = identityJsonFor(*ref) + emission.fragment;
            frame.set("type", "cell");
            frame.set("job", std::int64_t(emission.job));
            frame.set("experiment", emission.experiment);
            frame.set("cell", emission.cell);
            frame.set("row", row);
            frame.set("cached", emission.cached);
            frame.set("shared", emission.shared);
            if (emission.shared)
                cellsShared.add();
        }
        sendTo(emission.job, frame);
    }

    for (const JobSummary &summary : effects.completedJobs) {
        Json frame = Json::object();
        frame.set("type", "done");
        frame.set("job", std::int64_t(summary.job));
        frame.set("cells", std::int64_t(summary.cells));
        frame.set("failed", std::int64_t(summary.failed));
        sendTo(summary.job, frame);
        jobClients.erase(summary.job);
        jobsCompleted.add();
    }

    // A quarantined key's claim may be an orphan of the crash that
    // quarantined it; clean up so an eventual manual re-run works.
    for (const std::string &key : effects.quarantined)
        claims.breakIfStale(key);

    for (const int id : dead)
        dropPeer(id);
    maybeFinishDrain();
}

void
Daemon::handleHello(int peer_id, const Json &message)
{
    const auto it = peers.find(peer_id);
    if (it == peers.end())
        return;
    Peer &peer = it->second;
    if (message.get("token").asString() != spawnToken) {
        sendError(peer_id, "bad worker token");
        dropPeer(peer_id);
        return;
    }
    peer.kind = Peer::Kind::Worker;
    peer.workerName = message.get("name").asString();
    peer.pid = long(message.get("pid").asInt());
    peer.lastHeartbeatMs = nowMs();
    if (!opts.quiet)
        std::fprintf(stderr, "served: %s connected\n",
                     peer.workerName.c_str());
    dispatch(nowMs());
}

void
Daemon::handleSubmit(int peer_id, const Json &message)
{
    if (draining) {
        sendRetryAfter(peer_id, "draining");
        return;
    }

    const std::string plan_text = message.get("sample").asString();
    if (!plan_text.empty()) {
        std::string plan_error;
        if (!sample::SamplingPlan::tryParse(plan_text, &plan_error)
                 .has_value()) {
            sendError(peer_id, "bad sampling plan: " + plan_error);
            return;
        }
    }
    const bool smoke = message.get("smoke").asBool();

    // Expand the request into concrete registry cells.
    std::vector<CellRef> refs;
    const Json &exp_names = message.get("experiments");
    if (exp_names.isArray()) {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < exp_names.size(); ++i)
            names.push_back(exp_names.at(i).asString());
        std::string resolve_error;
        const auto experiments =
            tryResolveExperiments(names, resolve_error);
        if (!resolve_error.empty()) {
            sendError(peer_id, resolve_error);
            return;
        }
        for (const Experiment *experiment : experiments) {
            for (const CellSpec &spec : experiment->cells) {
                if (smoke && spec.id != experiment->smokeCell)
                    continue;
                refs.push_back(CellRef{experiment, &spec});
            }
        }
    }
    const Json &cell_list = message.get("cells");
    if (cell_list.isArray()) {
        for (std::size_t i = 0; i < cell_list.size(); ++i) {
            const Json &entry = cell_list.at(i);
            const std::string experiment =
                entry.get("experiment").asString();
            const std::string cell = entry.get("cell").asString();
            const auto ref = findCell(experiment, cell);
            if (!ref.has_value()) {
                sendError(peer_id, "unknown cell " + experiment + ":" +
                                       cell);
                return;
            }
            refs.push_back(*ref);
        }
    }
    if (refs.empty()) {
        sendError(peer_id, "no cells requested");
        return;
    }

    std::vector<CellRequest> cells;
    cells.reserve(refs.size());
    for (const CellRef &ref : refs) {
        CellRequest request;
        request.key = workKeyFor(ref, plan_text);
        request.experiment = ref.experiment->name;
        request.cell = ref.spec->id;
        request.samplePlan = plan_text;
        cells.push_back(std::move(request));
    }

    const std::uint64_t job = nextJobId++;
    SchedulerEffects effects;
    if (!scheduler.submit(job, cells, effects)) {
        backpressureRejects.add();
        sendRetryAfter(peer_id, "cell queue full");
        return;
    }
    jobsSubmitted.add();
    jobClients[job] = peer_id;

    Json accepted = Json::object();
    accepted.set("type", "accepted");
    accepted.set("job", std::int64_t(job));
    accepted.set("cells", std::int64_t(cells.size()));
    framesOut.add();
    const auto it = peers.find(peer_id);
    if (it != peers.end() && !it->second.conn.sendJson(accepted)) {
        dropPeer(peer_id);
        // The job still runs: its results warm the shared store.
    }
    applyEffects(effects); // may already carry cached/shared rows
    dispatch(nowMs());
}

void
Daemon::handleStatus(int peer_id)
{
    const auto it = peers.find(peer_id);
    if (it == peers.end())
        return;
    framesOut.add();
    if (!it->second.conn.sendJson(statusJson(nowMs())))
        dropPeer(peer_id);
}

void
Daemon::handleDrain(int peer_id)
{
    if (!draining && !opts.quiet)
        std::fprintf(stderr, "served: drain requested\n");
    draining = true;
    drainWaiters.push_back(peer_id);
    maybeFinishDrain();
}

void
Daemon::handleFrame(int peer_id, const Json &message)
{
    framesIn.add();
    const auto it = peers.find(peer_id);
    if (it == peers.end())
        return;
    Peer &peer = it->second;
    const std::string &type = message.get("type").asString();

    if (peer.kind == Peer::Kind::Unknown) {
        if (type == "hello" &&
            message.get("role").asString() == "worker") {
            handleHello(peer_id, message);
            return;
        }
        peer.kind = Peer::Kind::Client; // first frame classifies
    }

    if (peer.kind == Peer::Kind::Worker) {
        const std::uint64_t now = nowMs();
        peer.lastHeartbeatMs = now;
        if (type == "heartbeat")
            return;
        if (type == "result") {
            const std::string key = message.get("key").asString();
            const bool ok = message.get("ok").asBool();
            const bool cached = message.get("cached").asBool();
            peer.busy = false;
            peer.assignedKey.clear();
            if (ok) {
                ++peer.cellsDone;
                if (cached)
                    cellsFromCache.add();
                else
                    cellsSimulated.add();
            } else {
                ++peer.cellsFailed;
                cellsFailed.add();
            }
            applyEffects(scheduler.onResult(
                peer.workerName, key, ok,
                message.get("row").asString(), cached,
                message.get("error").asString(), now));
            dispatch(now);
            return;
        }
        return; // unknown worker frame: ignore
    }

    // Client frames.
    if (type == "submit")
        handleSubmit(peer_id, message);
    else if (type == "status")
        handleStatus(peer_id);
    else if (type == "drain")
        handleDrain(peer_id);
    else if (type == "ping") {
        Json pong = Json::object();
        pong.set("type", "pong");
        framesOut.add();
        if (!peer.conn.sendJson(pong))
            dropPeer(peer_id);
    } else {
        sendError(peer_id, "unknown request type '" + type + "'");
    }
}

void
Daemon::sendError(int peer_id, const std::string &message)
{
    const auto it = peers.find(peer_id);
    if (it == peers.end())
        return;
    Json frame = Json::object();
    frame.set("type", "error");
    frame.set("error", message);
    framesOut.add();
    if (!it->second.conn.sendJson(frame))
        dropPeer(peer_id);
}

void
Daemon::sendRetryAfter(int peer_id, const std::string &reason)
{
    const auto it = peers.find(peer_id);
    if (it == peers.end())
        return;
    Json frame = Json::object();
    frame.set("type", "retry-after");
    frame.set("seconds", std::int64_t(opts.retryAfterSeconds));
    frame.set("reason", reason);
    framesOut.add();
    if (!it->second.conn.sendJson(frame))
        dropPeer(peer_id);
}

void
Daemon::dropPeer(int peer_id)
{
    // Jobs whose client vanished keep running (their results warm
    // the shared store); they just lose their subscriber.
    for (auto it = jobClients.begin(); it != jobClients.end();)
        it = it->second == peer_id ? jobClients.erase(it)
                                   : std::next(it);
    drainWaiters.erase(
        std::remove(drainWaiters.begin(), drainWaiters.end(), peer_id),
        drainWaiters.end());
    peers.erase(peer_id);
}

void
Daemon::maybeFinishDrain()
{
    if (!draining || scheduler.activeJobs() != 0 ||
        scheduler.runningCount() != 0 || scheduler.queueDepth() != 0)
        return;

    Json shutdown = Json::object();
    shutdown.set("type", "shutdown");
    Json drained = Json::object();
    drained.set("type", "drained");

    std::vector<int> worker_ids;
    for (const auto &[id, peer] : peers)
        if (peer.kind == Peer::Kind::Worker)
            worker_ids.push_back(id);
    for (const int id : worker_ids) {
        const auto it = peers.find(id);
        if (it != peers.end()) {
            framesOut.add();
            it->second.conn.sendJson(shutdown);
        }
    }
    const std::vector<int> waiters = drainWaiters;
    drainWaiters.clear();
    for (const int id : waiters) {
        const auto it = peers.find(id);
        if (it != peers.end()) {
            framesOut.add();
            it->second.conn.sendJson(drained);
        }
    }
    g_finished = true;
}

Json
Daemon::statusJson(std::uint64_t now_ms) const
{
    Json reply = Json::object();
    reply.set("type", "status-reply");
    const std::uint64_t uptime = now_ms - startedMs;
    reply.set("uptime_ms", std::int64_t(uptime));
    reply.set("draining", draining);
    reply.set("queue_depth", std::int64_t(scheduler.queueDepth()));
    reply.set("running", std::int64_t(scheduler.runningCount()));
    reply.set("active_jobs", std::int64_t(scheduler.activeJobs()));
    reply.set("retries", std::int64_t(scheduler.totalRetries()));
    reply.set("quarantined",
              std::int64_t(scheduler.totalQuarantined()));
    reply.set("shared_hits", std::int64_t(scheduler.totalSharedHits()));

    Json workers = Json::array();
    std::uint64_t done_total = 0;
    for (const auto &[id, peer] : peers) {
        if (peer.kind != Peer::Kind::Worker)
            continue;
        Json w = Json::object();
        w.set("name", peer.workerName);
        w.set("pid", std::int64_t(peer.pid));
        w.set("busy", peer.busy);
        if (peer.busy)
            w.set("assigned", peer.assignedKey);
        w.set("cells_done", std::int64_t(peer.cellsDone));
        w.set("cells_failed", std::int64_t(peer.cellsFailed));
        w.set("heartbeat_age_ms",
              std::int64_t(now_ms - peer.lastHeartbeatMs));
        workers.push(std::move(w));
        done_total += peer.cellsDone;
    }
    reply.set("workers", std::move(workers));

    Json claim_stats = Json::object();
    claim_stats.set("claimed", std::int64_t(claims.claims()));
    claim_stats.set("conflicts", std::int64_t(claims.conflicts()));
    claim_stats.set("broken", std::int64_t(claims.broken()));
    reply.set("claims", std::move(claim_stats));

    Json counters = Json::object();
    for (const CounterSnapshot &c : fleetMetrics->snapshot().counters)
        counters.set(c.name, std::int64_t(c.value));
    reply.set("counters", std::move(counters));

    reply.set("cells_per_sec",
              uptime == 0 ? 0.0
                          : double(done_total) * 1000.0 /
                                double(uptime));
    return reply;
}

int
Daemon::run()
{
    ::signal(SIGPIPE, SIG_IGN);
    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    g_stop = 0;
    g_finished = false;
    startedMs = nowMs();

    std::string listen_error;
    if (!listener.open(opts.socketPath,
                       int(opts.maxClients + opts.workers + 8),
                       &listen_error)) {
        warn("served: cannot listen on '", opts.socketPath,
             "': ", listen_error);
        return 1;
    }
    if (!opts.quiet)
        std::fprintf(stderr, "served: listening on %s\n",
                     opts.socketPath.c_str());

    for (unsigned i = 0; i < opts.workers; ++i)
        spawnWorker();

    while (!g_finished) {
        if (g_stop && !draining) {
            // SIGTERM/SIGINT is a graceful drain: finish in-flight
            // jobs, shut workers down, then exit.
            if (!opts.quiet)
                std::fprintf(stderr, "served: draining on signal\n");
            draining = true;
            maybeFinishDrain();
            if (g_finished)
                break;
        }

        const std::uint64_t now = nowMs();
        int timeout = 100;
        if (const auto wake = scheduler.nextWakeMs();
            wake.has_value() && *wake > now)
            timeout = int(std::min<std::uint64_t>(*wake - now, 100));

        std::vector<pollfd> fds;
        std::vector<int> ids; // fds[i + 1] belongs to peer ids[i]
        fds.push_back(pollfd{listener.fd(), POLLIN, 0});
        for (const auto &[id, peer] : peers) {
            fds.push_back(pollfd{peer.conn.fd(), POLLIN, 0});
            ids.push_back(id);
        }
        const int ready = ::poll(fds.data(), nfds_t(fds.size()),
                                 timeout);
        if (ready < 0 && errno != EINTR) {
            warn("served: poll: ", std::strerror(errno));
            return 1;
        }

        if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
            Conn conn = listener.accept();
            if (conn.valid()) {
                if (peers.size() >=
                    opts.maxClients + opts.workers + 4) {
                    // Connection-level backpressure: the queue cap
                    // protects cells; this protects file descriptors.
                    Json frame = Json::object();
                    frame.set("type", "retry-after");
                    frame.set("seconds",
                              std::int64_t(opts.retryAfterSeconds));
                    frame.set("reason", "too many connections");
                    conn.sendJson(frame);
                } else {
                    Peer peer;
                    peer.conn = std::move(conn);
                    peer.lastHeartbeatMs = now;
                    peers.emplace(nextPeerId++, std::move(peer));
                }
            }
        }

        for (std::size_t i = 0; i < ids.size(); ++i) {
            if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) ==
                0)
                continue;
            const int id = ids[i];
            const auto it = peers.find(id);
            if (it == peers.end())
                continue; // dropped by an earlier frame this tick
            Json message;
            bool parse_ok = false;
            std::string parse_error;
            const FrameResult r = it->second.conn.recvJson(
                message, parse_ok, &parse_error, 2000);
            switch (r) {
              case FrameResult::Ok:
                if (parse_ok) {
                    handleFrame(id, message);
                } else {
                    // Well-framed, bad payload: answer, keep the
                    // connection.
                    malformedFrames.add();
                    sendError(id, "invalid JSON: " + parse_error);
                }
                break;
              case FrameResult::Oversized:
                malformedFrames.add();
                sendError(id, "frame exceeds limit");
                dropPeer(id);
                break;
              case FrameResult::Closed:
              case FrameResult::Truncated:
              case FrameResult::Timeout:
              case FrameResult::Error:
                if (peers.count(id) != 0 &&
                    peers.at(id).kind == Peer::Kind::Worker)
                    declareWorkerGone(id, toString(r));
                else
                    dropPeer(id);
                break;
            }
        }

        reapChildren();
        checkDeadlines(nowMs());
        dispatch(nowMs());
        maybeFinishDrain();
    }

    if (!opts.quiet)
        std::fprintf(stderr, "served: drained, exiting\n");
    // Workers got shutdown frames; give them a moment, then sweep.
    for (int i = 0; i < 20 && !children.empty(); ++i) {
        reapChildren();
        if (children.empty())
            break;
        ::usleep(50 * 1000);
    }
    listener.close();
    return 0;
}

} // namespace oscache::serve
