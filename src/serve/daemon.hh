/**
 * @file
 * The `oscache-served` daemon: an always-on results service fronting
 * a fleet of worker processes.
 *
 * One poll()-driven event loop owns every socket: the Unix listener,
 * N worker connections, and any number of client connections.  All
 * simulation happens in the workers, so the loop only ever shuffles
 * frames and bookkeeping — it stays responsive while cells run.
 *
 * Division of labour:
 *  - ShardScheduler (scheduler.hh) decides which cell runs where and
 *    owns the retry/backoff/quarantine policy;
 *  - claim files + the result cache (claims.hh) make cells
 *    exactly-once across processes and daemon restarts;
 *  - this class does processes (fork/exec, reap, respawn, SIGKILL on
 *    wedge), sockets (accept, frame, fan-out), backpressure (queue
 *    cap -> retry-after), and the drain protocol.
 *
 * Failure model: a worker that closes its socket, misses heartbeats,
 * or overruns a cell deadline is declared gone; its claims are
 * broken, its cells re-queued with bounded backoff, and a
 * replacement is spawned (bounded respawn budget).  Cells that fail
 * maxAttempts times are quarantined and reported to subscribers as
 * errors — a poisoned cell cannot wedge the fleet.
 */

#ifndef OSCACHE_SERVE_DAEMON_HH
#define OSCACHE_SERVE_DAEMON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ipc.hh"
#include "obs/metrics.hh"
#include "serve/claims.hh"
#include "serve/scheduler.hh"

namespace oscache::serve
{

struct DaemonOptions
{
    std::string socketPath;
    /** Shared store root (traces, claims/, results/). */
    std::string storeDir = ".oscache-artifacts";
    /** Worker processes to keep alive. */
    unsigned workers = 2;
    /** Workers stream records through cursors. */
    bool stream = false;
    /** Path of the worker executable (default: this binary). */
    std::string workerExec;
    /** Queued-cell cap; submits beyond it get retry-after. */
    std::size_t maxQueuedCells = 4096;
    /** Concurrent client connections; beyond it, retry-after. */
    std::size_t maxClients = 64;
    /** Simulation attempts before quarantine. */
    unsigned maxAttempts = 3;
    /** Base/backoff cap for re-queued cells (ms). */
    std::uint64_t backoffMs = 250;
    std::uint64_t backoffCapMs = 5000;
    /** Declare a worker wedged after this heartbeat silence (ms). */
    std::uint64_t heartbeatTimeoutMs = 10000;
    /** Per-assignment deadline (ms); overrun -> SIGKILL + retry. */
    std::uint64_t cellTimeoutMs = 600000;
    /** Total extra worker spawns allowed (crash-loop brake). */
    unsigned respawnBudget = 16;
    /** Seconds suggested in retry-after replies. */
    unsigned retryAfterSeconds = 2;
    bool quiet = false;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, spawn the fleet, and serve until drained (SIGTERM /
     * drain request) or a fatal setup error.  Returns the exit code.
     */
    int run();

    /** Async-signal-safe stop request (installed on SIGTERM/SIGINT). */
    static void requestStop();

  private:
    struct Peer
    {
        Conn conn;
        enum class Kind
        {
            Unknown, ///< connected, no frame yet
            Client,
            Worker,
        } kind = Kind::Unknown;
        /** Worker fields. */
        std::string workerName;
        long pid = 0;
        std::uint64_t lastHeartbeatMs = 0;
        bool busy = false;
        std::string assignedKey;
        std::uint64_t assignmentDeadlineMs = 0;
        std::uint64_t cellsDone = 0;
        std::uint64_t cellsFailed = 0;
    };

    struct SpawnedWorker
    {
        long pid = 0;
        std::string name;
    };

    bool spawnWorker();
    void declareWorkerGone(int peer_id, const char *why);
    void reapChildren();
    void checkDeadlines(std::uint64_t now_ms);
    void dispatch(std::uint64_t now_ms);
    void applyEffects(const SchedulerEffects &effects);
    void handleFrame(int peer_id, const Json &message);
    void handleHello(int peer_id, const Json &message);
    void handleSubmit(int peer_id, const Json &message);
    void handleStatus(int peer_id);
    void handleDrain(int peer_id);
    void sendError(int peer_id, const std::string &message);
    void sendRetryAfter(int peer_id, const std::string &reason);
    void dropPeer(int peer_id);
    void maybeFinishDrain();
    Json statusJson(std::uint64_t now_ms) const;

    DaemonOptions opts;
    Listener listener;
    std::string spawnToken;
    std::map<int, Peer> peers;
    int nextPeerId = 1;
    std::map<std::uint64_t, int> jobClients; ///< job -> peer id
    ShardScheduler scheduler;
    ClaimStore claims;
    std::vector<SpawnedWorker> children;
    unsigned respawnsLeft = 0;
    bool draining = false;
    std::vector<int> drainWaiters; ///< peers owed a "drained" reply
    std::uint64_t nextJobId = 1;
    std::uint64_t startedMs = 0;

    /**
     * Fleet counters (src/obs metrics, exported in the status
     * reply).  A private registry, not processMetrics(): the daemon
     * can be constructed in a test process whose global registry
     * already froze, and its counters are nobody else's business.
     */
    std::unique_ptr<MetricsRegistry> fleetMetrics;
    Counter cellsSimulated;
    Counter cellsFromCache;
    Counter cellsShared;
    Counter cellsFailed;
    Counter jobsSubmitted;
    Counter jobsCompleted;
    Counter backpressureRejects;
    Counter framesIn;
    Counter framesOut;
    Counter workersRespawned;
    Counter malformedFrames;
};

} // namespace oscache::serve

#endif // OSCACHE_SERVE_DAEMON_HH
