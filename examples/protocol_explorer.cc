/**
 * @file
 * protocol_explorer: drive the memory system directly (no trace, no
 * workload) to compare the Illinois invalidate protocol against the
 * selective Firefly update protocol on the sharing patterns of
 * Section 5: a spin barrier, a migratory lock, a producer-consumer
 * flag, and a falsely-shared pair of counters.
 *
 * Shows the library's lowest-level API: MemorySystem reads/writes
 * with explicit processor ids and times.
 */

#include <cstdio>
#include <functional>

#include "mem/memsys.hh"

using namespace oscache;

namespace
{

struct Pattern
{
    const char *name;
    /** Run the pattern; return the number of L1 read misses. */
    std::function<std::uint64_t(MemorySystem &)> run;
};

AccessContext
ctxOf(DataCategory cat)
{
    AccessContext ctx;
    ctx.os = true;
    ctx.category = cat;
    return ctx;
}

std::uint64_t
barrierPattern(MemorySystem &mem)
{
    // Four processors increment the barrier word and re-read it, 50
    // episodes: classic ping-pong under invalidate.
    const Addr barrier = 0x1000;
    const auto ctx = ctxOf(DataCategory::Barrier);
    Cycles now = 0;
    std::uint64_t misses = 0;
    for (int episode = 0; episode < 50; ++episode) {
        for (CpuId c = 0; c < 4; ++c) {
            const auto rd = mem.read(c, barrier, now, ctx);
            misses += rd.l1Miss;
            now = mem.write(c, barrier, rd.completeAt, ctx).completeAt;
        }
        for (CpuId c = 0; c < 3; ++c) { // Spinners observe release.
            const auto rd = mem.read(c, barrier, now, ctx);
            misses += rd.l1Miss;
            now = rd.completeAt;
        }
    }
    return misses;
}

std::uint64_t
migratoryLockPattern(MemorySystem &mem)
{
    // A lock word travels processor to processor; each holder does a
    // read-modify-write on acquire and a write on release.
    const Addr lock = 0x2000;
    const auto ctx = ctxOf(DataCategory::Lock);
    Cycles now = 0;
    std::uint64_t misses = 0;
    for (int round = 0; round < 100; ++round) {
        const CpuId c = CpuId(round % 4);
        const auto rd = mem.read(c, lock, now, ctx);
        misses += rd.l1Miss;
        now = mem.write(c, lock, rd.completeAt, ctx).completeAt;
        now = mem.write(c, lock, now, ctx).completeAt;
    }
    return misses;
}

std::uint64_t
producerConsumerPattern(MemorySystem &mem)
{
    // CPU 0 produces a flag; CPUs 1-3 poll it.
    const Addr flag = 0x3000;
    const auto ctx = ctxOf(DataCategory::FreqShared);
    Cycles now = 0;
    std::uint64_t misses = 0;
    for (int round = 0; round < 100; ++round) {
        now = mem.write(0, flag, now, ctx).completeAt;
        for (CpuId c = 1; c < 4; ++c) {
            const auto rd = mem.read(c, flag, now, ctx);
            misses += rd.l1Miss;
            now = rd.completeAt;
        }
    }
    return misses;
}

std::uint64_t
falseSharingPattern(MemorySystem &mem)
{
    // Two counters in the same line, each private to one processor.
    const Addr a = 0x4000;
    const Addr b = 0x4004;
    const auto ctx = ctxOf(DataCategory::InfreqComm);
    Cycles now = 0;
    std::uint64_t misses = 0;
    for (int round = 0; round < 100; ++round) {
        const auto rd0 = mem.read(0, a, now, ctx);
        misses += rd0.l1Miss;
        now = mem.write(0, a, rd0.completeAt, ctx).completeAt;
        const auto rd1 = mem.read(1, b, now, ctx);
        misses += rd1.l1Miss;
        now = mem.write(1, b, rd1.completeAt, ctx).completeAt;
    }
    return misses;
}

} // namespace

int
main()
{
    std::printf("protocol_explorer: L1 read misses per sharing pattern, "
                "Illinois invalidate vs Firefly update\n\n");
    std::printf("%-20s %12s %10s %10s\n", "pattern", "invalidate",
                "update", "saved");

    const Pattern patterns[] = {
        {"spin barrier", barrierPattern},
        {"migratory lock", migratoryLockPattern},
        {"producer-consumer", producerConsumerPattern},
        {"false sharing", falseSharingPattern},
    };

    for (const Pattern &p : patterns) {
        MemorySystem invalidate(MachineConfig::base());
        const std::uint64_t inv = p.run(invalidate);

        MemorySystem update(MachineConfig::base());
        // All four pattern addresses live in page 0x1000-0x4fff:
        // mark those pages update-protocol.
        std::unordered_set<Addr> pages{0x1000, 0x2000, 0x3000, 0x4000};
        update.setUpdatePages(&pages);
        const std::uint64_t upd = p.run(update);

        std::printf("%-20s %12llu %10llu %9.0f%%\n", p.name,
                    (unsigned long long)inv, (unsigned long long)upd,
                    inv == 0 ? 0.0 : 100.0 * double(inv - upd) / inv);
    }

    std::printf("\nReading: update protocols shine exactly where the "
                "paper applies them — barriers, hot locks, and\n"
                "producer-consumer flags — the variables BCoh_RelUp "
                "packs into its 384-byte update page.\n");
    return 0;
}
