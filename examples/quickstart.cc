/**
 * @file
 * Quickstart: generate the TRFD_4 workload trace, run it on the Base
 * machine and on the fully optimized BCPref system, and print the
 * headline comparison — the experiment the paper's abstract
 * summarizes (eliminate or hide ~75% of OS data misses, speed the OS
 * up by ~19%).
 */

#include <cstdio>

#include "report/experiment.hh"

using namespace oscache;

int
main()
{
    std::printf("oscache quickstart: TRFD_4 on Base vs BCPref\n\n");

    const RunResult base = runWorkload(WorkloadKind::Trfd4,
                                       SystemKind::Base);
    const RunResult best = runWorkload(WorkloadKind::Trfd4,
                                       SystemKind::BCPref);

    const double base_misses = double(base.stats.osMissTotal());
    const double best_misses = double(best.stats.osMissTotal() -
                                      best.stats.osMissPartiallyHidden);
    const double base_os = double(base.stats.osTime());
    const double best_os = double(best.stats.osTime());

    std::printf("OS data read misses (L1):\n");
    std::printf("  Base   : %10.0f\n", base_misses);
    std::printf("  BCPref : %10.0f (fully exposed)\n", best_misses);
    std::printf("  eliminated or hidden: %.0f%%\n\n",
                100.0 * (1.0 - best_misses / base_misses));

    std::printf("OS execution time (cycles):\n");
    std::printf("  Base   : %12.0f\n", base_os);
    std::printf("  BCPref : %12.0f\n", best_os);
    std::printf("  OS speedup: %.1f%%\n",
                100.0 * (base_os / best_os - 1.0));
    return 0;
}
