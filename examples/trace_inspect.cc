/**
 * @file
 * trace_inspect: generate (or load) a trace and print what is inside
 * — the record mix, the kernel/user balance, the block-operation
 * census, and the busiest basic blocks.  The same first look one
 * would take at a freshly captured monitor trace.
 *
 * Usage:
 *   trace_inspect                 # inspect the TRFD_4 synthetic trace
 *   trace_inspect file.trace      # inspect a saved trace (either format)
 *   trace_inspect file.trace --convert out.otb --binary
 *                                 # re-encode as compact binary (v2)
 *   trace_inspect file.otb --convert out.trace --text
 *                                 # back to the greppable text format
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "synth/generator.hh"
#include "trace/io.hh"

using namespace oscache;

int
main(int argc, char **argv)
{
    std::string input;
    std::string convert_out;
    TraceFormat convert_format = TraceFormat::Text;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--convert") == 0) {
            if (i + 1 >= argc)
                fatal("--convert needs an output path");
            convert_out = argv[++i];
        } else if (std::strcmp(argv[i], "--binary") == 0) {
            convert_format = TraceFormat::Binary;
        } else if (std::strcmp(argv[i], "--text") == 0) {
            convert_format = TraceFormat::Text;
        } else if (argv[i][0] == '-') {
            fatal("unknown flag '", argv[i], "'");
        } else {
            input = argv[i];
        }
    }

    Trace trace = !input.empty()
        ? readTraceFile(input)
        : generateTrace(WorkloadKind::Trfd4, CoherenceOptions::none());

    if (!convert_out.empty()) {
        writeTraceFile(convert_out, trace, convert_format);
        std::printf("wrote %zu records to %s (%s format)\n",
                    trace.totalRecords(), convert_out.c_str(),
                    convert_format == TraceFormat::Binary ? "binary"
                                                          : "text");
        return 0;
    }
    std::printf("trace: %u cpus, %zu records, %zu block ops, %zu update "
                "pages\n\n",
                trace.numCpus(), trace.totalRecords(),
                trace.blockOps().size(), trace.updatePages().size());

    // Record mix.
    std::map<RecordType, std::uint64_t> by_type;
    std::uint64_t os_refs = 0;
    std::uint64_t user_refs = 0;
    std::uint64_t os_instr = 0;
    std::uint64_t user_instr = 0;
    std::map<BasicBlockId, std::uint64_t> refs_by_bb;
    for (CpuId c = 0; c < trace.numCpus(); ++c) {
        for (const TraceRecord &rec : trace.stream(c)) {
            by_type[rec.type] += 1;
            if (rec.isData()) {
                (rec.isOs() ? os_refs : user_refs) += 1;
                refs_by_bb[rec.bb] += 1;
            } else if (rec.type == RecordType::Exec) {
                (rec.isOs() ? os_instr : user_instr) += rec.aux;
            }
        }
    }

    std::printf("record mix:\n");
    for (const auto &[type, count] : by_type)
        std::printf("  %-14s %10llu\n", std::string(toString(type)).c_str(),
                    (unsigned long long)count);

    std::printf("\ninstructions: os %llu, user %llu\n",
                (unsigned long long)os_instr,
                (unsigned long long)user_instr);
    std::printf("data refs:    os %llu (%.1f%%), user %llu\n",
                (unsigned long long)os_refs,
                100.0 * double(os_refs) / double(os_refs + user_refs),
                (unsigned long long)user_refs);

    // Block-operation census.
    std::uint64_t copies = 0;
    std::uint64_t zeros = 0;
    std::uint64_t bytes = 0;
    for (const BlockOp &op : trace.blockOps()) {
        (op.isCopy() ? copies : zeros) += 1;
        bytes += op.size;
    }
    std::printf("\nblock ops:    %llu copies, %llu zeros, %.1f MB "
                "moved\n",
                (unsigned long long)copies, (unsigned long long)zeros,
                double(bytes) / (1024.0 * 1024.0));

    // Busiest basic blocks by reference count.
    std::vector<std::pair<std::uint64_t, BasicBlockId>> busiest;
    for (const auto &[bb, n] : refs_by_bb)
        busiest.emplace_back(n, bb);
    std::sort(busiest.rbegin(), busiest.rend());
    std::printf("\nbusiest basic blocks (by data references):\n");
    for (std::size_t i = 0; i < busiest.size() && i < 8; ++i)
        std::printf("  bb%-8u %10llu\n", busiest[i].second,
                    (unsigned long long)busiest[i].first);
    return 0;
}
