/**
 * @file
 * trace_inspect: generate (or load) a trace and print what is inside
 * — the record mix, the kernel/user balance, the block-operation
 * census, and the busiest basic blocks.  The same first look one
 * would take at a freshly captured monitor trace.
 *
 * Saved traces are walked through streaming cursors, so inspecting
 * (or re-encoding) a file never materializes it: memory stays at
 * O(cpus x read-ahead buffer) however large the trace.
 *
 * Usage:
 *   trace_inspect                 # inspect the TRFD_4 synthetic trace
 *   trace_inspect file.trace      # inspect a saved trace (any format)
 *   trace_inspect file.trace --convert out.otb --chunked
 *                                 # stream-re-encode as chunked v3
 *   trace_inspect file.otb --convert out.trace --text
 *                                 # back to the greppable text format
 *   trace_inspect file.trace --buffer 256
 *                                 # shrink the per-cpu cursor buffer
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "synth/generator.hh"
#include "trace/io.hh"
#include "trace/source.hh"

using namespace oscache;

namespace
{

/**
 * Stream-re-encode @p source as chunked v3: each cursor is drained in
 * read-ahead-sized batches straight into the writer, so conversion
 * memory is one batch regardless of trace length.
 */
std::size_t
convertChunked(TraceSource &source, const std::string &out,
               std::size_t batch_records)
{
    std::ofstream os(out, std::ios::out | std::ios::binary |
                              std::ios::trunc);
    if (!os)
        fatal("cannot open '", out, "' for writing");
    ChunkedTraceWriter writer(os, source.numCpus(), source.updatePages());
    std::size_t total = 0;
    RecordStream batch;
    batch.reserve(batch_records);
    for (CpuId c = 0; c < source.numCpus(); ++c) {
        auto cursor = source.cursor(c);
        while (const TraceRecord *rec = cursor->peek()) {
            batch.push_back(*rec);
            cursor->advance();
            if (batch.size() >= batch_records) {
                writer.writeChunk(c, batch);
                total += batch.size();
                batch.clear();
            }
        }
        writer.writeChunk(c, batch);
        total += batch.size();
        batch.clear();
    }
    writer.finish(source.blockOps());
    if (!os)
        fatal("error writing '", out, "'");
    return total;
}

/** Rebuild a materialized Trace by draining @p source's cursors. */
Trace
materialize(TraceSource &source)
{
    Trace trace(source.numCpus());
    for (CpuId c = 0; c < source.numCpus(); ++c) {
        auto cursor = source.cursor(c);
        while (const TraceRecord *rec = cursor->peek()) {
            trace.stream(c).push_back(*rec);
            cursor->advance();
        }
    }
    for (const BlockOp &op : source.blockOps())
        trace.blockOps().add(op);
    trace.updatePages() = source.updatePages();
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::string convert_out;
    TraceFormat convert_format = TraceFormat::Text;
    std::size_t buffer_records = defaultStreamReadAhead;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--convert") == 0) {
            if (i + 1 >= argc)
                fatal("--convert needs an output path");
            convert_out = argv[++i];
        } else if (std::strcmp(argv[i], "--binary") == 0) {
            convert_format = TraceFormat::Binary;
        } else if (std::strcmp(argv[i], "--chunked") == 0) {
            convert_format = TraceFormat::Chunked;
        } else if (std::strcmp(argv[i], "--text") == 0) {
            convert_format = TraceFormat::Text;
        } else if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (std::strcmp(argv[i], "--buffer") == 0) {
            if (i + 1 >= argc)
                fatal("--buffer needs a record count");
            buffer_records = std::strtoul(argv[++i], nullptr, 10);
            if (buffer_records == 0)
                fatal("--buffer must be >= 1");
        } else if (argv[i][0] == '-') {
            fatal("unknown flag '", argv[i], "'");
        } else {
            input = argv[i];
        }
    }

    // A file input streams through bounded cursors; the demo trace is
    // synthesized in memory and wrapped in the same interface.
    std::unique_ptr<Trace> generated;
    std::unique_ptr<TraceSource> source;
    if (!input.empty()) {
        source = std::make_unique<FileTraceSource>(input, buffer_records);
    } else {
        generated = std::make_unique<Trace>(generateTrace(
            WorkloadKind::Trfd4, CoherenceOptions::none()));
        source = std::make_unique<MaterializedTraceSource>(*generated);
    }
    if (const auto *file =
            dynamic_cast<const FileTraceSource *>(source.get()))
        std::printf("source: %s, read-ahead %zu records/cpu\n",
                    source->mode(), file->readAhead());

    if (!convert_out.empty()) {
        if (convert_format == TraceFormat::Chunked) {
            const std::size_t total =
                convertChunked(*source, convert_out, buffer_records);
            std::printf("streamed %zu records to %s (chunked format, "
                        "%zu-record batches)\n",
                        total, convert_out.c_str(), buffer_records);
            return 0;
        }
        // Text and binary v2 carry whole-trace counts in their
        // headers, so the output (not the input) must materialize.
        const Trace trace = materialize(*source);
        writeTraceFile(convert_out, trace, convert_format);
        std::printf("wrote %zu records to %s (%s format)\n",
                    trace.totalRecords(), convert_out.c_str(),
                    convert_format == TraceFormat::Binary ? "binary"
                                                          : "text");
        return 0;
    }

    // Record mix, streamed one cursor at a time.
    std::map<RecordType, std::uint64_t> by_type;
    std::uint64_t total_records = 0;
    std::uint64_t os_refs = 0;
    std::uint64_t user_refs = 0;
    std::uint64_t os_instr = 0;
    std::uint64_t user_instr = 0;
    std::map<BasicBlockId, std::uint64_t> refs_by_bb;
    for (CpuId c = 0; c < source->numCpus(); ++c) {
        auto cursor = source->cursor(c);
        for (const TraceRecord *recp = cursor->peek(); recp != nullptr;
             cursor->advance(), recp = cursor->peek()) {
            const TraceRecord &rec = *recp;
            total_records += 1;
            by_type[rec.type] += 1;
            if (rec.isData()) {
                (rec.isOs() ? os_refs : user_refs) += 1;
                refs_by_bb[rec.bb] += 1;
            } else if (rec.type == RecordType::Exec) {
                (rec.isOs() ? os_instr : user_instr) += rec.aux;
            }
        }
    }

    std::printf("trace: %u cpus, %llu records, %zu block ops, %zu update "
                "pages\n\n",
                source->numCpus(), (unsigned long long)total_records,
                source->blockOps().size(), source->updatePages().size());

    std::printf("record mix:\n");
    for (const auto &[type, count] : by_type)
        std::printf("  %-14s %10llu\n", std::string(toString(type)).c_str(),
                    (unsigned long long)count);

    std::printf("\ninstructions: os %llu, user %llu\n",
                (unsigned long long)os_instr,
                (unsigned long long)user_instr);
    std::printf("data refs:    os %llu (%.1f%%), user %llu\n",
                (unsigned long long)os_refs,
                100.0 * double(os_refs) / double(os_refs + user_refs),
                (unsigned long long)user_refs);

    // Block-operation census.
    std::uint64_t copies = 0;
    std::uint64_t zeros = 0;
    std::uint64_t bytes = 0;
    for (const BlockOp &op : source->blockOps()) {
        (op.isCopy() ? copies : zeros) += 1;
        bytes += op.size;
    }
    std::printf("\nblock ops:    %llu copies, %llu zeros, %.1f MB "
                "moved\n",
                (unsigned long long)copies, (unsigned long long)zeros,
                double(bytes) / (1024.0 * 1024.0));

    // Busiest basic blocks by reference count.
    std::vector<std::pair<std::uint64_t, BasicBlockId>> busiest;
    for (const auto &[bb, n] : refs_by_bb)
        busiest.emplace_back(n, bb);
    std::sort(busiest.rbegin(), busiest.rend());
    std::printf("\nbusiest basic blocks (by data references):\n");
    for (std::size_t i = 0; i < busiest.size() && i < 8; ++i)
        std::printf("  bb%-8u %10llu\n", busiest[i].second,
                    (unsigned long long)busiest[i].first);
    return 0;
}
