/**
 * @file
 * kernel_tuning: the workflow an operating-system performance
 * engineer would run with this library — the Section 6 methodology
 * as a tool.
 *
 * 1. Simulate the workload and collect per-basic-block miss counts.
 * 2. Rank the kernel's miss hot spots.
 * 3. Insert prefetches at the top spots and re-simulate.
 * 4. Report what each hot spot cost and what prefetching recovered.
 */

#include <cstdio>
#include <map>

#include "core/blockop/schemes.hh"
#include "core/hotspot/hotspot.hh"
#include "report/figures.hh"
#include "sim/system.hh"
#include "synth/bbids.hh"
#include "synth/generator.hh"

using namespace oscache;

namespace
{

const char *
blockName(BasicBlockId bb)
{
    switch (bb) {
      case bb::pteInitLoop:   return "pte init loop";
      case bb::pteCopyLoop:   return "pte copy loop";
      case bb::pteProtLoop:   return "pte protect loop";
      case bb::pteScanLoop:   return "pte scan loop";
      case bb::freelistWalk:  return "free-list walk";
      case bb::resumeProc:    return "resume process";
      case bb::timerFuncs:    return "timer/accounting";
      case bb::trapSyscall:   return "trap/syscall seq";
      case bb::contextSwitch: return "context switch";
      case bb::scheduleProc:  return "schedule process";
      case bb::syscallDispatch: return "syscall dispatch";
      case bb::interruptEntry: return "interrupt entry";
      case bb::pageFaultEntry: return "page-fault entry";
      case bb::forkEntry:     return "fork";
      case bb::execEntry:     return "exec";
      case bb::fileIo:        return "file I/O";
      case bb::bufferCacheLookup: return "buffer-cache lookup";
      case bb::inodeOps:      return "inode ops";
      case bb::pagerRun:      return "pager";
      case bb::counterUpdate: return "counter update";
      case bb::networkStack:  return "network stack";
      default:                return "(other)";
    }
}

SimStats
simulate(const Trace &trace, const SimOptions &opts)
{
    SimStats stats;
    MemorySystem mem(MachineConfig::base());
    auto exec = makeBlockOpExecutor(BlockScheme::Dma, mem, stats, opts);
    System system(trace, mem, *exec, opts, stats);
    system.run();
    return stats;
}

} // namespace

int
main()
{
    const WorkloadKind kind = WorkloadKind::TrfdMake;
    std::printf("kernel_tuning: miss hot spots of %s (with block and "
                "coherence optimizations already applied)\n\n",
                toString(kind));

    const WorkloadProfile profile = WorkloadProfile::forKind(kind);
    const Trace trace =
        generateTrace(profile, CoherenceOptions::relocUpdate());
    const SimOptions opts = profile.simOptions();

    // Phase 1: profile.
    const SimStats before = simulate(trace, opts);

    // Phase 2: rank.
    std::multimap<std::uint64_t, BasicBlockId, std::greater<>> ranked;
    for (const auto &[bb, misses] : before.osOtherMissByBb)
        ranked.emplace(misses, bb);

    std::printf("%-4s %-22s %10s %8s\n", "#", "kernel code", "misses",
                "share");
    const double total = double(before.osMissOther);
    unsigned rank = 1;
    for (const auto &[misses, bb] : ranked) {
        if (rank > 12)
            break;
        std::printf("%-4u %-22s %10llu %7.1f%%\n", rank, blockName(bb),
                    (unsigned long long)misses, 100.0 * misses / total);
        ++rank;
    }

    // Phase 3: insert prefetches at the top 12 spots and re-simulate.
    const HotspotPlan plan = selectHotspots(before, paperHotspotCount);
    const Trace tuned = insertPrefetches(trace, plan);
    const SimStats after = simulate(tuned, opts);

    // Phase 4: report.
    std::printf("\nRemaining OS misses: %.0f -> %.0f (%.0f%% of the "
                "hot-spot misses hidden)\n",
                remainingOsMisses(before), remainingOsMisses(after),
                100.0 * (remainingOsMisses(before) -
                         remainingOsMisses(after)) /
                    (hotspotCoverage(before, plan) *
                     double(before.osMissOther)));
    std::printf("OS time: %llu -> %llu cycles (%.1f%% faster)\n",
                (unsigned long long)before.osTime(),
                (unsigned long long)after.osTime(),
                100.0 * (double(before.osTime()) / double(after.osTime()) -
                         1.0));
    return 0;
}
