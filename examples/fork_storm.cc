/**
 * @file
 * fork_storm: build a hand-written multiprocessor trace with the
 * library's trace API — a storm of fork-style page-copy chains where
 * each copy's destination becomes the next copy's source — and
 * compare every block-operation scheme on it.
 *
 * This is the paper's Section 4.1.3 insight in isolation: chained
 * copies make cache bypassing pathological (every source read
 * becomes a reuse miss) while the DMA-like engine shrugs, because
 * the data never needed to visit the processor at all.
 */

#include <cstdio>

#include "core/blockop/schemes.hh"
#include "mem/memsys.hh"
#include "sim/system.hh"
#include "trace/trace.hh"

using namespace oscache;

namespace
{

/** Emit a chain of page copies, each reading the previous target. */
void
emitForkChain(Trace &trace, CpuId cpu, Addr pool, unsigned links)
{
    RecordStream &s = trace.stream(cpu);
    Addr src = pool;
    for (unsigned i = 0; i < links; ++i) {
        const Addr dst = pool + Addr{i + 1} * 4096;
        BlockOp op;
        op.src = src;
        op.dst = dst;
        op.size = 4096;
        op.kind = BlockOpKind::Copy;
        const BlockOpId id = trace.blockOps().add(op);

        s.push_back(TraceRecord::exec(400, 301, true));
        TraceRecord begin;
        begin.type = RecordType::BlockOpBegin;
        begin.aux = id;
        begin.flags = flagOs;
        s.push_back(begin);
        TraceRecord end = begin;
        end.type = RecordType::BlockOpEnd;
        s.push_back(end);
        src = dst;
    }
}

} // namespace

int
main()
{
    std::printf("fork_storm: 4 CPUs x 24-link fork chains under every "
                "block-operation scheme\n\n");
    std::printf("%-12s %10s %12s %12s %10s\n", "scheme", "OS misses",
                "reuse (in)", "OS time", "vs Base");

    double base_time = 0.0;
    for (BlockScheme scheme :
         {BlockScheme::Base, BlockScheme::Pref, BlockScheme::Bypass,
          BlockScheme::ByPref, BlockScheme::Dma}) {
        Trace trace(4);
        for (CpuId cpu = 0; cpu < 4; ++cpu)
            emitForkChain(trace, cpu, 0x0100'0000 + Addr{cpu} * 0x20'0000,
                          24);

        SimStats stats;
        MemorySystem mem(MachineConfig::base());
        SimOptions opts;
        auto exec = makeBlockOpExecutor(scheme, mem, stats, opts);
        System system(trace, mem, *exec, opts, stats);
        system.run();

        if (scheme == BlockScheme::Base)
            base_time = double(stats.osTime());
        std::printf("%-12s %10llu %12llu %12llu %9.2fx\n",
                    toString(scheme),
                    (unsigned long long)stats.osMissTotal(),
                    (unsigned long long)stats.reuseInside,
                    (unsigned long long)stats.osTime(),
                    double(stats.osTime()) / base_time);
    }

    std::printf("\nReading: Blk_Bypass explodes with inside-reuse "
                "misses because each chained copy re-fetches what the\n"
                "previous one refused to cache; Blk_Dma never involves "
                "the processor and wins outright.\n");
    return 0;
}
