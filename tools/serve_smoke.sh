#!/bin/sh
# serve_smoke.sh — end-to-end exercise of the sharded experiment
# service: a 4-worker daemon, 8 concurrent clients submitting
# overlapping sweeps, one worker SIGKILL'd mid-run.  Passes when
# every client completes, the fleet recovered, no distinct cell was
# simulated more than once, and the union of streamed rows is
# byte-identical to a single-process `oscache-bench
# --canonical-results` run of the same cells.
#
# usage: serve_smoke.sh SERVED SERVECTL BENCH SCRATCH_DIR

set -u

SERVED=$1
SERVECTL=$2
BENCH=$3
SCRATCH=$4

SOCK="/tmp/oscache-serve-smoke-$$.sock"
DAEMON_PID=""

fail()
{
    echo "serve-smoke: FAIL: $*" >&2
    if [ -f "$SCRATCH/daemon.log" ]; then
        echo "--- daemon log ---" >&2
        cat "$SCRATCH/daemon.log" >&2
    fi
    exit 1
}

cleanup()
{
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null
        # The daemon's workers die with it (its destructor sweeps),
        # but a SIGKILL'd daemon cannot; sweep any stragglers.
        pkill -9 -f "oscache-served --worker" 2>/dev/null
    fi
    rm -f "$SOCK"
}
trap cleanup EXIT INT TERM

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH" || fail "cannot create $SCRATCH"

"$SERVED" --socket "$SOCK" --workers 4 --store "$SCRATCH/store" \
    > "$SCRATCH/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to answer pings.
tries=0
until "$SERVECTL" --socket "$SOCK" --quiet ping; do
    tries=$((tries + 1))
    [ "$tries" -ge 100 ] && fail "daemon never came up"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited early"
    sleep 0.2
done

# 8 concurrent clients, overlapping sweeps: every distinct cell is
# requested by several clients, so claim/scheduler dedup is on the
# critical path, and client 1's "all" makes the union the full smoke
# suite.
i=1
for names in "all" "figures" "tables" "ablations" "figures" \
             "tables" "all" "figures tables"; do
    # shellcheck disable=SC2086
    "$SERVECTL" --socket "$SOCK" --quiet --smoke \
        --out "$SCRATCH/client$i.jsonl" submit $names &
    eval "CLIENT$i=$!"
    i=$((i + 1))
done

# Let the fleet pick up work, then SIGKILL one worker mid-run.  Its
# cells must be re-queued and the fleet must respawn a replacement.
sleep 1
status=$("$SERVECTL" --socket "$SOCK" status) \
    || fail "status query failed"
victim=$(printf '%s' "$status" | grep -o '"pid":[0-9]*' | head -1 |
    cut -d: -f2)
[ -n "$victim" ] || fail "no worker pid in status reply"
kill -9 "$victim" || fail "cannot SIGKILL worker $victim"
echo "serve-smoke: killed worker pid $victim mid-run"

# Every client must finish cleanly despite the crash.
i=1
while [ "$i" -le 8 ]; do
    eval "pid=\$CLIENT$i"
    wait "$pid" || fail "client $i failed"
    [ -s "$SCRATCH/client$i.jsonl" ] || fail "client $i got no rows"
    i=$((i + 1))
done

# Exactly-once accounting: each fresh simulation stores one result
# file and reports cached=false, so serve.cells.simulated must equal
# the number of result files — except a worker killed after the store
# but before the reply, whose retry answers from cache (bounded by
# the retry count).
status=$("$SERVECTL" --socket "$SOCK" status) \
    || fail "final status query failed"
counter()
{
    printf '%s' "$status" | grep -o "\"$1\":[0-9]*" | head -1 |
        cut -d: -f2
}
simulated=$(counter "serve.cells.simulated")
retries=$(counter "retries")
respawned=$(counter "serve.workers.respawned")
files=$(ls "$SCRATCH/store/results" 2>/dev/null | wc -l)
echo "serve-smoke: simulated=$simulated result_files=$files" \
    "retries=$retries respawned=$respawned"
[ "$simulated" -le "$files" ] \
    || fail "more simulations ($simulated) than result files ($files)"
[ "$files" -le "$((simulated + retries))" ] \
    || fail "duplicate simulation: $files files, $simulated simulated," \
            " $retries retries"
[ "$respawned" -ge 1 ] || fail "fleet never respawned after SIGKILL"

# Graceful drain stops the daemon.
"$SERVECTL" --socket "$SOCK" --quiet drain || fail "drain failed"
wait "$DAEMON_PID" || fail "daemon exited non-zero after drain"
DAEMON_PID=""

# Byte-identical against the single-process driver on the same cells.
"$BENCH" --smoke --jobs 2 --quiet --canonical-results \
    --cache-dir "$SCRATCH/bench_cache" \
    --results "$SCRATCH/bench" all > /dev/null 2>&1 \
    || fail "oscache-bench reference run failed"
cat "$SCRATCH"/client*.jsonl | LC_ALL=C sort -u > "$SCRATCH/serve.sorted"
LC_ALL=C sort -u "$SCRATCH/bench.jsonl" > "$SCRATCH/bench.sorted"
cmp -s "$SCRATCH/serve.sorted" "$SCRATCH/bench.sorted" || {
    diff "$SCRATCH/bench.sorted" "$SCRATCH/serve.sorted" | head -20 >&2
    fail "served rows differ from single-process oscache-bench"
}

echo "serve-smoke: PASS"
exit 0
