/**
 * @file
 * oscache-lint — static checker for traces and the simulator's
 * coherence machinery.
 *
 * Three passes:
 *  - the trace linter (structural well-formedness of record streams),
 *  - the lockset race detector (unlocked multi-writer shared data),
 *  - optionally a full simulation with the coherence invariant
 *    checker attached (--simulate).
 *
 * Examples:
 *   oscache-lint trace --trace shell.trace
 *   oscache-lint workload --workload trfd4 --quanta 4 --simulate
 *   oscache-lint selftest
 *
 * Exit status is 0 when no Errors were found (Warnings are reported
 * but do not fail the run), 1 otherwise.  `selftest` seeds one defect
 * of each class and exits 0 only if every one is caught.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "check/racedetect.hh"
#include "common/version.hh"
#include "check/tracelint.hh"
#include "core/runner.hh"
#include "mem/memsys.hh"
#include "synth/generator.hh"
#include "trace/io.hh"
#include "trace/source.hh"

using namespace oscache;

namespace
{

const std::map<std::string, WorkloadKind> workloadNames = {
    {"trfd4", WorkloadKind::Trfd4},
    {"trfd_4", WorkloadKind::Trfd4},
    {"trfd+make", WorkloadKind::TrfdMake},
    {"trfdmake", WorkloadKind::TrfdMake},
    {"arc2d+fsck", WorkloadKind::Arc2dFsck},
    {"arc2dfsck", WorkloadKind::Arc2dFsck},
    {"shell", WorkloadKind::Shell},
};

void
usage()
{
    std::printf(
        "usage: oscache-lint <command> [options]\n"
        "\n"
        "commands:\n"
        "  trace     lint a saved trace file\n"
        "  workload  synthesize a workload and lint the trace\n"
        "  selftest  seed one defect of every class; verify each is "
        "caught\n"
        "\n"
        "options:\n"
        "  --trace <file>       trace file (trace)\n"
        "  --workload <name>    trfd4 | trfd+make | arc2d+fsck | shell\n"
        "  --quanta <n>         scheduling quanta to synthesize\n"
        "  --seed <n>           workload random seed\n"
        "  --simulate           also run the simulator with the\n"
        "                       coherence invariant checker attached\n"
        "  --stream             lint a trace file through streaming\n"
        "                       cursors (bounded memory; skips the\n"
        "                       race detector, which needs the whole\n"
        "                       trace resident)\n"
        "  --stream-buffer <n>  cursor read-ahead in records per cpu\n"
        "                       (default 4096)\n");
}

struct Args
{
    std::string command;
    std::string traceFile;
    std::optional<WorkloadKind> workload;
    std::optional<unsigned> quanta;
    std::optional<std::uint64_t> seed;
    bool simulate = false;
    bool stream = false;
    std::size_t streamBuffer = defaultStreamReadAhead;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        fatal("missing command; try 'oscache-lint --help'");
    args.command = argv[1];
    if (args.command == "--help" || args.command == "-h") {
        usage();
        std::exit(0);
    }
    if (args.command == "--version") {
        std::printf("%s\n", versionString().c_str());
        std::exit(0);
    }
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--trace") {
            args.traceFile = value();
        } else if (flag == "--workload") {
            const std::string name = value();
            const auto it = workloadNames.find(name);
            if (it == workloadNames.end())
                fatal("unknown workload '", name, "'");
            args.workload = it->second;
        } else if (flag == "--quanta") {
            args.quanta = unsigned(std::stoul(value()));
        } else if (flag == "--seed") {
            args.seed = std::stoull(value());
        } else if (flag == "--simulate") {
            args.simulate = true;
        } else if (flag == "--stream") {
            args.stream = true;
        } else if (flag == "--stream-buffer") {
            args.streamBuffer = std::stoul(value());
            if (args.streamBuffer == 0)
                fatal("--stream-buffer must be >= 1");
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "'");
        }
    }
    return args;
}

/** Lint + race-detect @p trace; print findings; return error count. */
std::size_t
lintAndReport(const Trace &trace, const Args &args, const char *label)
{
    std::vector<CheckFinding> findings = lintTrace(trace);
    const std::vector<CheckFinding> races = detectRaces(trace);
    findings.insert(findings.end(), races.begin(), races.end());

    for (const auto &f : findings)
        std::printf("%s: %s\n", label, format(f).c_str());
    const std::size_t errors = countErrors(findings);
    std::printf("%s: %zu records, %zu findings (%zu errors)\n", label,
                trace.totalRecords(), findings.size(), errors);

    if (args.simulate) {
        // runOnTrace attaches the invariant checker by default and
        // panics on the first violation.
        MachineConfig machine = MachineConfig::base();
        machine.numCpus = trace.numCpus();
        const SystemSetup setup = SystemSetup::forKind(SystemKind::Base);
        runOnTrace(trace, machine, SimOptions{}, setup);
        std::printf("%s: coherence invariants clean end-to-end\n", label);
    }
    return errors;
}

/** Streamed lint: bounded memory however long the trace file is. */
int
cmdTraceStreamed(const Args &args)
{
    const char *label = args.traceFile.c_str();
    FileTraceSource source(args.traceFile, args.streamBuffer);
    const std::vector<CheckFinding> findings = lintSource(source);
    for (const auto &f : findings)
        std::printf("%s: %s\n", label, format(f).c_str());
    const std::size_t errors = countErrors(findings);
    std::size_t records = 0;
    for (CpuId c = 0; c < source.numCpus(); ++c)
        records += source.knownRecords(c).value_or(0);
    std::printf("%s: %zu records, %zu findings (%zu errors) "
                "[streamed, read-ahead %zu records/cpu]\n",
                label, records, findings.size(), errors,
                source.readAhead());

    if (args.simulate) {
        MachineConfig machine = MachineConfig::base();
        machine.numCpus = source.numCpus();
        const SystemSetup setup = SystemSetup::forKind(SystemKind::Base);
        runOnSource(
            [&args]() -> std::unique_ptr<TraceSource> {
                return std::make_unique<FileTraceSource>(
                    args.traceFile, args.streamBuffer);
            },
            machine, SimOptions{}, setup);
        std::printf("%s: coherence invariants clean end-to-end\n", label);
    }
    return errors ? 1 : 0;
}

int
cmdTrace(const Args &args)
{
    if (args.traceFile.empty())
        fatal("trace needs --trace <file>");
    if (args.stream)
        return cmdTraceStreamed(args);
    const Trace trace = readTraceFile(args.traceFile);
    return lintAndReport(trace, args, args.traceFile.c_str()) ? 1 : 0;
}

int
cmdWorkload(const Args &args)
{
    if (!args.workload)
        fatal("workload needs --workload <name>");
    WorkloadProfile p = WorkloadProfile::forKind(*args.workload);
    if (args.quanta)
        p.quanta = *args.quanta;
    if (args.seed)
        p.seed = *args.seed;
    const SystemSetup setup = SystemSetup::forKind(SystemKind::Base);
    const Trace trace = generateTrace(p, setup.coherence);
    return lintAndReport(trace, args, p.name) ? 1 : 0;
}

/** @name Selftest: seed one defect per class, expect it caught. @{ */

bool
hasCode(const std::vector<CheckFinding> &findings, CheckCode code)
{
    for (const auto &f : findings)
        if (f.code == code)
            return true;
    return false;
}

TraceRecord
lockRecord(RecordType type, Addr addr)
{
    TraceRecord r;
    r.type = type;
    r.addr = addr;
    r.category = DataCategory::Lock;
    return r;
}

TraceRecord
barrierRecord(Addr addr, std::uint32_t parties)
{
    TraceRecord r;
    r.type = RecordType::BarrierArrive;
    r.addr = addr;
    r.aux = parties;
    r.category = DataCategory::Barrier;
    return r;
}

TraceRecord
blockOpRecord(RecordType type, BlockOpId id)
{
    TraceRecord r;
    r.type = type;
    r.aux = id;
    return r;
}

/** Fault-inject the memory system; return the checker's findings. */
template <typename Fault>
std::vector<CheckFinding>
seedCoherenceDefect(Fault &&fault)
{
    const MachineConfig machine = MachineConfig::base();
    MemorySystem mem(machine);
    CoherenceChecker checker(machine);
    mem.setObserver(&checker);
    fault(mem);
    checker.auditFull(mem);
    return checker.findings();
}

int
cmdSelftest()
{
    const Addr addr = kernelSpaceBase;
    AccessContext os;
    os.os = true;
    os.category = DataCategory::KernelOther;

    struct Case
    {
        const char *name;
        CheckCode expect;
        std::vector<CheckFinding> findings;
    };
    std::vector<Case> cases;

    cases.push_back({"swmr-violation", CheckCode::SwmrViolation,
                     seedCoherenceDefect([&](MemorySystem &mem) {
                         mem.read(0, addr, 0, os);
                         mem.read(1, addr, 100, os);
                         mem.debugSetL2State(0, addr, LineState::Modified);
                         mem.debugSetL2State(1, addr, LineState::Modified);
                     })});

    cases.push_back({"inclusion-violation", CheckCode::InclusionViolation,
                     seedCoherenceDefect([&](MemorySystem &mem) {
                         mem.read(0, addr, 0, os);
                         mem.debugSetL2State(0, addr, LineState::Invalid);
                     })});

    cases.push_back({"illegal-transition", CheckCode::IllegalTransition,
                     seedCoherenceDefect([&](MemorySystem &mem) {
                         mem.read(0, addr, 0, os);
                         mem.read(1, addr, 100, os);
                         // Both copies are Shared; exclusivity cannot
                         // be gained without a bus transaction.
                         mem.debugSetL2State(0, addr,
                                             LineState::Exclusive);
                     })});

    {
        Trace t(1);
        BlockOp op;
        op.dst = addr;
        op.size = 4096;
        op.kind = BlockOpKind::Zero;
        const BlockOpId id = t.blockOps().add(op);
        t.stream(0).push_back(blockOpRecord(RecordType::BlockOpBegin, id));
        cases.push_back({"unbalanced-block-op", CheckCode::UnbalancedBlockOp,
                         lintTrace(t)});
    }

    {
        Trace t(1);
        t.stream(0).push_back(
            lockRecord(RecordType::LockRelease, addr + 64));
        cases.push_back({"unpaired-lock-release",
                         CheckCode::UnpairedLockRelease, lintTrace(t)});
    }

    {
        Trace t(2);
        // Both processors should arrive at a 2-party barrier; one
        // never does.
        t.stream(0).push_back(barrierRecord(addr + 128, 2));
        cases.push_back({"barrier-count-mismatch",
                         CheckCode::BarrierCountMismatch, lintTrace(t)});
    }

    {
        Trace t(1);
        t.stream(0).push_back(TraceRecord::write(
            0x1000, DataCategory::OtherShared, 0, true));
        cases.push_back({"category-region-mismatch",
                         CheckCode::CategoryRegionMismatch, lintTrace(t)});
    }

    {
        Trace t(2);
        for (CpuId c = 0; c < 2; ++c)
            t.stream(c).push_back(TraceRecord::write(
                addr + 256, DataCategory::OtherShared, 0, true));
        cases.push_back({"unlocked-shared-write",
                         CheckCode::UnlockedSharedWrite, detectRaces(t)});
    }

    int failures = 0;
    for (const auto &c : cases) {
        const bool caught = hasCode(c.findings, c.expect);
        std::printf("%-28s %s\n", c.name, caught ? "PASS" : "FAIL");
        if (!caught)
            ++failures;
    }
    std::printf("selftest: %zu/%zu defect classes caught\n",
                cases.size() - failures, cases.size());
    return failures ? 1 : 0;
}

/** @} */

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "trace")
        return cmdTrace(args);
    if (args.command == "workload")
        return cmdWorkload(args);
    if (args.command == "selftest")
        return cmdSelftest();
    usage();
    fatal("unknown command '", args.command, "'");
}
