/**
 * @file
 * oscache-served: the sharded experiment daemon.
 *
 * Runs the coordinator by default; re-executed with `--worker` (by
 * the coordinator itself) it becomes one worker process.  Both roles
 * live in one binary so the fleet is always version-matched — the
 * daemon spawns workers from its own executable.
 *
 *   oscache-served --socket /tmp/oscache.sock --workers 4 \
 *       --store .oscache-artifacts
 *   oscache-servectl --socket /tmp/oscache.sock submit --smoke all
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/version.hh"
#include "serve/daemon.hh"
#include "serve/worker.hh"

using namespace oscache;
using namespace oscache::serve;

namespace
{

void
usage()
{
    std::printf(
        "usage: oscache-served [options]\n"
        "\n"
        "Long-running experiment service: accepts JSON job requests\n"
        "over a Unix socket, shards their cells across a fleet of\n"
        "worker processes, and streams canonical result rows back to\n"
        "each client as cells complete.\n"
        "\n"
        "options:\n"
        "  --socket PATH   Unix socket to listen on\n"
        "                  (default ./oscache-served.sock)\n"
        "  --workers N     worker processes (default 2)\n"
        "  --store D       shared store directory: traces at the top,\n"
        "                  claims/ and results/ underneath\n"
        "                  (default .oscache-artifacts)\n"
        "  --stream        workers pull records through streaming\n"
        "                  cursors (bounded memory)\n"
        "  --max-queue N   queued-cell cap before submits get\n"
        "                  retry-after (default 4096)\n"
        "  --max-attempts N  attempts before a cell is quarantined\n"
        "                  (default 3)\n"
        "  --heartbeat-timeout-ms N  declare a silent worker wedged\n"
        "                  (default 10000)\n"
        "  --cell-timeout-ms N  per-assignment deadline (default\n"
        "                  600000)\n"
        "  --respawn-budget N  replacement workers allowed before the\n"
        "                  fleet stops regrowing (default 16)\n"
        "  --quiet         no lifecycle chatter on stderr\n"
        "  --version       print build identification and exit\n"
        "\n"
        "SIGTERM/SIGINT drain gracefully: in-flight jobs finish,\n"
        "workers shut down, then the daemon exits.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool worker_mode = false;
    WorkerOptions worker;
    DaemonOptions daemon;
    daemon.socketPath = "./oscache-served.sock";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        auto number = [&]() -> unsigned long {
            return std::strtoul(value().c_str(), nullptr, 10);
        };
        if (arg == "--worker") {
            worker_mode = true;
        } else if (arg == "--socket") {
            daemon.socketPath = worker.socketPath = value();
        } else if (arg == "--token") {
            worker.token = value();
        } else if (arg == "--store") {
            daemon.storeDir = worker.storeDir = value();
        } else if (arg == "--name") {
            worker.name = value();
        } else if (arg == "--workers") {
            daemon.workers = unsigned(number());
            if (daemon.workers == 0)
                fatal("--workers must be >= 1");
        } else if (arg == "--stream") {
            daemon.stream = worker.stream = true;
        } else if (arg == "--max-queue") {
            daemon.maxQueuedCells = number();
        } else if (arg == "--max-attempts") {
            daemon.maxAttempts = unsigned(number());
            if (daemon.maxAttempts == 0)
                fatal("--max-attempts must be >= 1");
        } else if (arg == "--heartbeat-timeout-ms") {
            daemon.heartbeatTimeoutMs = number();
        } else if (arg == "--cell-timeout-ms") {
            daemon.cellTimeoutMs = number();
            worker.claimWaitMs = daemon.cellTimeoutMs;
        } else if (arg == "--respawn-budget") {
            daemon.respawnBudget = unsigned(number());
        } else if (arg == "--quiet") {
            daemon.quiet = true;
        } else if (arg == "--version") {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option ", arg);
        }
    }

    if (worker_mode) {
        if (worker.socketPath.empty() || worker.storeDir.empty())
            fatal("--worker needs --socket and --store");
        return runWorker(worker);
    }

    // workerExec stays empty: the daemon spawns workers from
    // /proc/self/exe, so the fleet is always this very binary.
    Daemon d(daemon);
    return d.run();
}
