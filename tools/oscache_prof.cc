/**
 * @file
 * oscache-prof — the observability front-end: run one workload with
 * the src/obs collectors attached and present what they saw.
 *
 *   oscache-prof --workload shell --hotspots
 *   oscache-prof --workload trfd4 --metrics --bus
 *   oscache-prof --workload shell --timeline trace.json
 *
 * --hotspots prints the miss-attribution profiler's ranked hot-spot
 * table (the paper's Section 6 selection, mechanized) and
 * cross-checks it against the simulation engine's own per-block miss
 * counts: the line "hot-spot cross-check: AGREE" certifies that the
 * observability pipeline reproduces the hand-coded analysis.
 *
 * --timeline writes Chrome trace_event JSON loadable in
 * chrome://tracing or https://ui.perfetto.dev (1 cycle = 1 us).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/log.hh"
#include "common/version.hh"
#include "core/hotspot/hotspot.hh"
#include "core/runner.hh"
#include "synth/generator.hh"
#include "synth/stream_source.hh"

using namespace oscache;

namespace
{

const std::map<std::string, WorkloadKind> workloadNames = {
    {"trfd4", WorkloadKind::Trfd4},
    {"trfd_4", WorkloadKind::Trfd4},
    {"trfd+make", WorkloadKind::TrfdMake},
    {"trfdmake", WorkloadKind::TrfdMake},
    {"arc2d+fsck", WorkloadKind::Arc2dFsck},
    {"arc2dfsck", WorkloadKind::Arc2dFsck},
    {"shell", WorkloadKind::Shell},
};

const std::map<std::string, SystemKind> systemNames = {
    {"base", SystemKind::Base},
    {"blk_pref", SystemKind::BlkPref},
    {"blk_bypass", SystemKind::BlkBypass},
    {"blk_bypref", SystemKind::BlkByPref},
    {"blk_dma", SystemKind::BlkDma},
    {"bcoh_reloc", SystemKind::BCohReloc},
    {"bcoh_relup", SystemKind::BCohRelUp},
    {"bcpref", SystemKind::BCPref},
};

void
usage()
{
    std::printf(
        "usage: oscache-prof [options]\n"
        "\n"
        "Run one workload with the observability subsystem attached.\n"
        "With none of --hotspots/--metrics/--bus/--timeline, all\n"
        "text sections are enabled.\n"
        "\n"
        "options:\n"
        "  --workload <name>   trfd4 | trfd+make | arc2d+fsck | shell\n"
        "                      (required)\n"
        "  --system <name>     base (default) | blk_* | bcoh_* | bcpref\n"
        "  --quanta <n>        scheduling quanta to synthesize\n"
        "  --seed <n>          workload random seed\n"
        "  --hotspots          miss-attribution profile + ranked\n"
        "                      hot-spot table + engine cross-check\n"
        "  --metrics           metrics registry snapshot\n"
        "  --bus               windowed bus occupancy and write-buffer\n"
        "                      depth\n"
        "  --timeline <file>   write Chrome trace_event JSON\n"
        "  --window <cycles>   bus/buffer window width (default 10000)\n"
        "  --sample <n>        keep every n-th timeline event "
        "(default 1)\n"
        "  --top <n>           hot spots to rank (default 12)\n"
        "  --stream            feed the collectors through streaming\n"
        "                      cursors (generation overlaps the run)\n"
        "  --version           print build identification and exit\n");
}

struct Args
{
    std::optional<WorkloadKind> workload;
    SystemKind system = SystemKind::Base;
    std::optional<unsigned> quanta;
    std::optional<std::uint64_t> seed;
    bool hotspots = false;
    bool metrics = false;
    bool bus = false;
    std::string timelineFile;
    Cycles window = 10'000;
    std::uint32_t sample = 1;
    unsigned top = paperHotspotCount;
    bool stream = false;
};

Args
parse(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--workload") {
            const std::string name = value();
            const auto it = workloadNames.find(name);
            if (it == workloadNames.end())
                fatal("unknown workload '", name, "'");
            args.workload = it->second;
        } else if (flag == "--system") {
            const std::string name = value();
            const auto it = systemNames.find(name);
            if (it == systemNames.end())
                fatal("unknown system '", name, "'");
            args.system = it->second;
        } else if (flag == "--quanta") {
            args.quanta = unsigned(std::stoul(value()));
        } else if (flag == "--seed") {
            args.seed = std::stoull(value());
        } else if (flag == "--hotspots") {
            args.hotspots = true;
        } else if (flag == "--metrics") {
            args.metrics = true;
        } else if (flag == "--bus") {
            args.bus = true;
        } else if (flag == "--timeline") {
            args.timelineFile = value();
        } else if (flag == "--window") {
            args.window = std::stoull(value());
            if (args.window == 0)
                fatal("--window must be >= 1");
        } else if (flag == "--sample") {
            args.sample = std::uint32_t(std::stoul(value()));
            if (args.sample == 0)
                fatal("--sample must be >= 1");
        } else if (flag == "--top") {
            args.top = unsigned(std::stoul(value()));
        } else if (flag == "--stream") {
            args.stream = true;
        } else if (flag == "--version") {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown flag '", flag, "'");
        }
    }
    // Bare invocation: show everything printable.
    if (!args.hotspots && !args.metrics && !args.bus &&
        args.timelineFile.empty()) {
        args.hotspots = true;
        args.metrics = true;
        args.bus = true;
    }
    return args;
}

void
printBusWindows(const ObsReport &obs)
{
    std::printf("window  start-cycle  bus-util  txns  wb-depth(avg)\n");
    const std::size_t rows = std::max(obs.busOccupancy.size(),
                                      obs.writeBufferDepth.size());
    for (std::size_t i = 0; i < rows; ++i) {
        double util = 0.0;
        std::uint64_t txns = 0;
        if (i < obs.busOccupancy.size()) {
            util = double(obs.busOccupancy[i].sum) /
                   double(obs.windowCycles);
            txns = obs.busOccupancy[i].samples;
        }
        double depth = 0.0;
        if (i < obs.writeBufferDepth.size() &&
            obs.writeBufferDepth[i].samples != 0)
            depth = double(obs.writeBufferDepth[i].sum) /
                    double(obs.writeBufferDepth[i].samples);
        std::printf("%-7zu %-12llu %7.1f%%  %-5llu %.2f\n", i,
                    (unsigned long long)(i * obs.windowCycles),
                    100.0 * util, (unsigned long long)txns, depth);
    }
    if (rows == 0)
        std::printf("(no bus activity recorded)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (!args.workload)
        fatal("--workload is required (try --help)");

    WorkloadProfile profile = WorkloadProfile::forKind(*args.workload);
    if (args.quanta)
        profile.quanta = *args.quanta;
    if (args.seed)
        profile.seed = *args.seed;

    const SystemSetup setup = SystemSetup::forKind(args.system);

    SimOptions opts = profile.simOptions();
    opts.obs.profiler = args.hotspots;
    opts.obs.metrics = args.metrics;
    opts.obs.busWindows = args.bus;
    opts.obs.timeline = !args.timelineFile.empty();
    opts.obs.samplePeriod = args.sample;
    opts.obs.windowCycles = args.window;

    RunResult result;
    if (args.stream) {
        result = runOnSource(
            [&profile, &setup]() -> std::unique_ptr<TraceSource> {
                return std::make_unique<SynthTraceSource>(profile,
                                                          setup.coherence);
            },
            MachineConfig::base(), opts, setup);
    } else {
        const Trace trace = generateTrace(profile, setup.coherence);
        result = runOnTrace(trace, MachineConfig::base(), opts, setup);
    }
    if (result.obs == nullptr)
        fatal("observability report missing (nothing was enabled?)");
    const ObsReport &obs = *result.obs;

    std::printf("== %s on %s (%llu cycles) ==\n", profile.name,
                toString(args.system),
                (unsigned long long)result.stats.totalTime());

    if (args.hotspots) {
        std::printf("\n--- miss attribution by data category ---\n");
        obs.profiler.renderCategories(std::cout);
        std::printf("\n--- hot spots (top %u by OS conflict misses) "
                    "---\n",
                    args.top);
        obs.profiler.renderHotspots(std::cout, args.top);
        std::cout.flush();
        // The load-bearing line: the profiler's independent event
        // pipeline must select the same blocks as the engine's stats.
        hotspotCrossCheck(result.stats, obs.profiler.otherMissByBb(),
                          args.top, &std::cout);
        std::cout.flush();
    }

    if (args.metrics) {
        std::printf("\n--- metrics ---\n");
        obs.metrics.render(std::cout);
        std::cout.flush();
    }

    if (args.bus) {
        std::printf("\n--- bus / write-buffer windows (%llu cycles "
                    "each) ---\n",
                    (unsigned long long)obs.windowCycles);
        printBusWindows(obs);
    }

    if (!args.timelineFile.empty()) {
        std::ofstream os(args.timelineFile);
        if (!os)
            fatal("cannot open '", args.timelineFile, "' for writing");
        obs.timeline.writeChromeTrace(os);
        std::printf("\ntimeline: %zu events (%llu dropped) -> %s\n",
                    obs.timeline.size(),
                    (unsigned long long)obs.timeline.dropped(),
                    args.timelineFile.c_str());
    }
    return 0;
}
