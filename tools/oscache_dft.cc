/**
 * @file
 * oscache-dft: differential-testing and golden-regression driver.
 *
 * Two subcommands:
 *
 *   oscache-dft fuzz [--count N] [--seconds S] [--seed-base B] [--jobs J]
 *       Generate N seeded adversarial traces (or keep generating fresh
 *       seeds until S seconds of wall clock have elapsed) and replay
 *       each one through both the full timing engine and the
 *       independent reference simulator, failing on the first
 *       divergence.  Every case is a pure function of its seed, which
 *       is printed on failure; re-run with --seed-base <seed>
 *       --count 1 to reproduce.
 *
 *   oscache-dft golden (--bless | --check) [--file F] [--jobs J]
 *       Run every registered experiment's smoke cell and either bless
 *       the normalized results into the golden file or compare against
 *       it, printing a line-level diff on drift.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "core/blockop/schemes.hh"
#include "core/cohopt.hh"
#include "dft/differ.hh"
#include "dft/fuzz.hh"
#include "dft/golden.hh"
#include "sample/cursor.hh"
#include "sample/plan.hh"
#include "synth/generator.hh"
#include "synth/profile.hh"
#include "trace/source.hh"

using namespace oscache;
using namespace oscache::dft;

namespace
{

void
usage()
{
    std::printf(
        "usage: oscache-dft fuzz [options]\n"
        "       oscache-dft workloads [--jobs J]\n"
        "       oscache-dft sampled [--jobs J] [--plan P]\n"
        "       oscache-dft golden (--bless | --check) [options]\n"
        "\n"
        "workloads: replay each of the paper's four synthetic\n"
        "workloads (full length) through the engine and the reference\n"
        "oracle simultaneously, failing on the first divergence.\n"
        "\n"
        "sampled: the same differential replay, but through a\n"
        "SMARTS-style sampling cursor — the oracle then checks every\n"
        "warm and measured record the sampled engine actually\n"
        "replays, proving the fast-forward machinery never corrupts\n"
        "the memory-system state the windows measure.\n"
        "\n"
        "fuzz options:\n"
        "  --count N      number of seeded traces (default 200)\n"
        "  --seconds S    instead of a fixed count, run fresh seeds\n"
        "                 until S seconds of wall clock have passed\n"
        "  --seed-base B  first seed (default 1; --seconds mode\n"
        "                 defaults to the current time)\n"
        "  --jobs J       worker threads (default 1)\n"
        "  --quiet        no progress lines\n"
        "\n"
        "golden options:\n"
        "  --bless        (re-)write the golden file from this build\n"
        "  --check        compare this build against the golden file\n"
        "  --file F       golden file (default tests/golden/cells.jsonl)\n"
        "  --scratch B    results scratch base (default\n"
        "                 oscache_dft_golden)\n"
        "  --jobs J       worker threads (default 1)\n");
}

int
runFuzz(std::uint64_t seed_base, std::uint64_t count, double seconds,
        unsigned jobs, bool quiet)
{
    using clock = std::chrono::steady_clock;
    const bool timed = seconds > 0;
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(seconds));

    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> total_records{0};
    std::atomic<bool> failed{false};
    std::mutex report_mutex;
    std::vector<FuzzReport> failures;

    const auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::uint64_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (timed) {
                if (clock::now() >= deadline)
                    return;
            } else if (index >= count) {
                return;
            }
            const FuzzReport report = fuzzOne(seed_base + index);
            total_records.fetch_add(report.records,
                                    std::memory_order_relaxed);
            const std::uint64_t n =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (report.diff.diverged) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(report_mutex);
                failures.push_back(report);
                return;
            }
            if (!quiet && n % 250 == 0) {
                std::printf("  %llu traces, no divergence\n",
                            (unsigned long long)n);
                std::fflush(stdout);
            }
        }
    };

    std::vector<std::thread> threads;
    for (unsigned t = 1; t < jobs; ++t)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();

    for (const FuzzReport &report : failures) {
        std::printf("FAIL: divergence at seed %llu (scheme %s, "
                    "%zu records)\n%s\n",
                    (unsigned long long)report.seed,
                    toString(report.scheme), report.records,
                    report.diff.report.c_str());
        std::printf("reproduce with: oscache-dft fuzz --seed-base %llu "
                    "--count 1\n",
                    (unsigned long long)report.seed);
    }
    if (!failures.empty())
        return 1;

    std::printf("fuzz: %llu traces (%llu records) engine vs oracle, "
                "0 divergences\n",
                (unsigned long long)done.load(),
                (unsigned long long)total_records.load());
    return 0;
}

int
runWorkloads(unsigned jobs)
{
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex print_mutex;
    constexpr std::size_t n =
        sizeof(allWorkloads) / sizeof(allWorkloads[0]);

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const WorkloadKind kind = allWorkloads[i];
            Trace trace =
                generateTrace(kind, CoherenceOptions::none());
            MaterializedTraceSource source(trace);
            const MachineConfig machine;
            const SimOptions options;
            const DiffResult diff =
                runDiff(source, machine, options, BlockScheme::Base);
            std::lock_guard<std::mutex> lock(print_mutex);
            if (diff.diverged) {
                failed.store(true, std::memory_order_relaxed);
                std::printf("FAIL: %s diverged\n%s\n", toString(kind),
                            diff.report.c_str());
            } else {
                std::printf("  %-10s %llu events checked, engine == "
                            "oracle\n",
                            toString(kind),
                            (unsigned long long)diff.eventsChecked);
                std::fflush(stdout);
            }
        }
    };

    std::vector<std::thread> threads;
    for (unsigned t = 1; t < jobs && t < n; ++t)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();

    if (failed.load())
        return 1;
    std::printf("workloads: %zu full workloads, engine vs oracle, "
                "0 divergences\n",
                n);
    return 0;
}

/** Phase-only controller: classify from the cursor, collect nothing. */
class PlanController final : public SampleController
{
  public:
    PlanController(sample::SampledTraceSource &sampled_source,
                   const sample::SamplingPlan &sampling_plan)
        : src(sampled_source), plan(sampling_plan)
    {}

    SamplePhase
    phaseFor(CpuId cpu) override
    {
        return src.cursorFor(cpu)->phase();
    }

    Cycles spinBreakCycles() const override { return plan.spinBreak; }

  private:
    sample::SampledTraceSource &src;
    sample::SamplingPlan plan;
};

int
runSampledWorkloads(unsigned jobs, const sample::SamplingPlan &plan)
{
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex print_mutex;
    constexpr std::size_t n =
        sizeof(allWorkloads) / sizeof(allWorkloads[0]);

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const WorkloadKind kind = allWorkloads[i];
            Trace trace =
                generateTrace(kind, CoherenceOptions::none());
            MaterializedTraceSource inner(trace);
            sample::SampledTraceSource source(inner, plan);
            PlanController controller(source, plan);
            const MachineConfig machine;
            const SimOptions options;
            const DiffResult diff = runDiff(source, machine, options,
                                            BlockScheme::Base,
                                            &controller);
            std::lock_guard<std::mutex> lock(print_mutex);
            if (diff.diverged) {
                failed.store(true, std::memory_order_relaxed);
                std::printf("FAIL: %s diverged under sampling\n%s\n",
                            toString(kind), diff.report.c_str());
            } else {
                std::printf("  %-10s %llu sampled-replay events "
                            "checked, engine == oracle\n",
                            toString(kind),
                            (unsigned long long)diff.eventsChecked);
                std::fflush(stdout);
            }
        }
    };

    std::vector<std::thread> threads;
    for (unsigned t = 1; t < jobs && t < n; ++t)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();

    if (failed.load())
        return 1;
    std::printf("sampled: %zu workloads under plan %s, engine vs "
                "oracle, 0 divergences\n",
                n, plan.describe().c_str());
    return 0;
}

int
runGolden(bool bless, const std::string &file, const std::string &scratch,
          unsigned jobs)
{
    const std::vector<std::string> current =
        collectGoldenLines(scratch, jobs);
    if (bless) {
        writeGoldenFile(file, current);
        std::printf("golden: blessed %zu cell rows into %s\n",
                    current.size(), file.c_str());
        return 0;
    }

    std::vector<std::string> blessed;
    std::string error;
    if (!readGoldenFile(file, blessed, &error)) {
        std::printf("FAIL: %s\n", error.c_str());
        return 1;
    }
    const GoldenDiff diff = compareGolden(blessed, current);
    if (!diff.matches) {
        std::printf("FAIL: %s\n", diff.report.c_str());
        return 1;
    }
    std::printf("golden: %zu cell rows match %s\n", current.size(),
                file.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    if (command == "--version") {
        std::printf("%s\n", versionString().c_str());
        return 0;
    }

    std::uint64_t count = 200;
    std::uint64_t seed_base = 1;
    bool seed_base_set = false;
    double seconds = 0;
    unsigned jobs = 1;
    bool quiet = false;
    bool bless = false;
    bool check = false;
    std::string file = "tests/golden/cells.jsonl";
    std::string scratch = "oscache_dft_golden";
    std::string plan_text = "period=50k,measure=2k,warmup=6k";

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--count") {
            count = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--seconds") {
            seconds = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--seed-base") {
            seed_base = std::strtoull(value().c_str(), nullptr, 10);
            seed_base_set = true;
        } else if (arg == "--jobs" || arg == "-j") {
            jobs = unsigned(std::strtoul(value().c_str(), nullptr, 10));
            if (jobs == 0)
                fatal("--jobs must be >= 1");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--bless") {
            bless = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--file") {
            file = value();
        } else if (arg == "--scratch") {
            scratch = value();
        } else if (arg == "--plan") {
            plan_text = value();
        } else {
            usage();
            fatal("unknown option ", arg);
        }
    }

    if (command == "fuzz") {
        if (seconds > 0 && !seed_base_set)
            seed_base = std::uint64_t(std::time(nullptr));
        return runFuzz(seed_base, count, seconds, jobs, quiet);
    }
    if (command == "workloads")
        return runWorkloads(jobs == 1 ? 4 : jobs);
    if (command == "sampled")
        return runSampledWorkloads(jobs == 1 ? 4 : jobs,
                                   sample::SamplingPlan::parse(plan_text));
    if (command == "golden") {
        if (bless == check)
            fatal("golden: pass exactly one of --bless / --check");
        return runGolden(bless, file, scratch, jobs);
    }
    usage();
    fatal("unknown command ", command);
}
