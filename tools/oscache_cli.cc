/**
 * @file
 * oscache — command-line driver for the simulator.
 *
 * Examples:
 *   oscache run --workload trfd4 --system bcpref
 *   oscache run --workload shell --system base --l1-size 16384
 *   oscache generate --workload arc2d+fsck --out shell.trace
 *   oscache replay --trace shell.trace --system blk_dma
 *   oscache list
 */

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/version.hh"
#include "core/blockop/schemes.hh"
#include "report/experiment.hh"
#include "sim/system.hh"
#include "synth/generator.hh"
#include "synth/stream_source.hh"
#include "trace/io.hh"
#include "trace/source.hh"

using namespace oscache;

namespace
{

const std::map<std::string, WorkloadKind> workloadNames = {
    {"trfd4", WorkloadKind::Trfd4},
    {"trfd_4", WorkloadKind::Trfd4},
    {"trfd+make", WorkloadKind::TrfdMake},
    {"trfdmake", WorkloadKind::TrfdMake},
    {"arc2d+fsck", WorkloadKind::Arc2dFsck},
    {"arc2dfsck", WorkloadKind::Arc2dFsck},
    {"shell", WorkloadKind::Shell},
};

const std::map<std::string, SystemKind> systemNames = {
    {"base", SystemKind::Base},
    {"blk_pref", SystemKind::BlkPref},
    {"blk_bypass", SystemKind::BlkBypass},
    {"blk_bypref", SystemKind::BlkByPref},
    {"blk_dma", SystemKind::BlkDma},
    {"bcoh_reloc", SystemKind::BCohReloc},
    {"bcoh_relup", SystemKind::BCohRelUp},
    {"bcpref", SystemKind::BCPref},
};

void
usage()
{
    std::printf(
        "usage: oscache <command> [options]\n"
        "\n"
        "commands:\n"
        "  run       synthesize a workload and simulate one system\n"
        "  generate  synthesize a workload and write the trace to disk\n"
        "  replay    simulate a saved trace\n"
        "  list      list workloads and systems\n"
        "\n"
        "options:\n"
        "  --workload <name>    trfd4 | trfd+make | arc2d+fsck | shell\n"
        "  --system <name>      base | blk_pref | blk_bypass | blk_bypref\n"
        "                       | blk_dma | bcoh_reloc | bcoh_relup |"
        " bcpref\n"
        "  --l1-size <bytes>    primary data cache size (default 32768)\n"
        "  --l1-line <bytes>    primary line size (default 16)\n"
        "  --l2-size <bytes>    secondary cache size (default 262144)\n"
        "  --l2-line <bytes>    secondary line size (default 32)\n"
        "  --quanta <n>         scheduling quanta to synthesize\n"
        "  --seed <n>           workload random seed\n"
        "  --icache             model the instruction cache in detail\n"
        "  --trace <file>       trace file (replay)\n"
        "  --out <file>         output trace file (generate)\n"
        "  --format <f>         generate output format: text | binary |\n"
        "                       chunked (chunked streams to disk with\n"
        "                       bounded memory)\n"
        "  --stream             run/replay through streaming cursors\n"
        "                       instead of materializing the trace\n"
        "  --stream-buffer <n>  cursor read-ahead in records per cpu\n"
        "                       (default 4096)\n");
}

struct Args
{
    std::string command;
    std::optional<WorkloadKind> workload;
    SystemKind system = SystemKind::Base;
    MachineConfig machine = MachineConfig::base();
    std::optional<unsigned> quanta;
    std::optional<std::uint64_t> seed;
    bool icache = false;
    std::string traceFile;
    std::string outFile;
    TraceFormat format = TraceFormat::Text;
    bool stream = false;
    std::size_t streamBuffer = defaultStreamReadAhead;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        fatal("missing command; try 'oscache list'");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--workload") {
            const std::string name = value();
            const auto it = workloadNames.find(name);
            if (it == workloadNames.end())
                fatal("unknown workload '", name, "'");
            args.workload = it->second;
        } else if (flag == "--system") {
            const std::string name = value();
            const auto it = systemNames.find(name);
            if (it == systemNames.end())
                fatal("unknown system '", name, "'");
            args.system = it->second;
        } else if (flag == "--l1-size") {
            args.machine.l1Size = std::stoul(value());
        } else if (flag == "--l1-line") {
            args.machine.l1LineSize = std::stoul(value());
        } else if (flag == "--l2-size") {
            args.machine.l2Size = std::stoul(value());
        } else if (flag == "--l2-line") {
            args.machine.l2LineSize = std::stoul(value());
        } else if (flag == "--quanta") {
            args.quanta = unsigned(std::stoul(value()));
        } else if (flag == "--seed") {
            args.seed = std::stoull(value());
        } else if (flag == "--icache") {
            args.icache = true;
        } else if (flag == "--trace") {
            args.traceFile = value();
        } else if (flag == "--out") {
            args.outFile = value();
        } else if (flag == "--format") {
            const std::string name = value();
            if (name == "text")
                args.format = TraceFormat::Text;
            else if (name == "binary")
                args.format = TraceFormat::Binary;
            else if (name == "chunked")
                args.format = TraceFormat::Chunked;
            else
                fatal("unknown format '", name, "'");
        } else if (flag == "--stream") {
            args.stream = true;
        } else if (flag == "--stream-buffer") {
            args.streamBuffer = std::stoul(value());
            if (args.streamBuffer == 0)
                fatal("--stream-buffer must be >= 1");
        } else if (flag == "--version") {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "'");
        }
    }
    return args;
}

WorkloadProfile
profileFor(const Args &args)
{
    if (!args.workload)
        fatal("--workload is required");
    WorkloadProfile p = WorkloadProfile::forKind(*args.workload);
    if (args.quanta)
        p.quanta = *args.quanta;
    if (args.seed)
        p.seed = *args.seed;
    return p;
}

void
report(const SimStats &s, const BusSnapshot *bus)
{
    const double total = double(s.totalTime());
    std::printf("time:   user %.1f%%  idle %.1f%%  os %.1f%%\n",
                100.0 * s.userTime() / total, 100.0 * s.idle / total,
                100.0 * s.osTime() / total);
    std::printf("os:     exec %llu  imiss %llu  dread %llu  dwrite %llu  "
                "pref %llu  sync %llu cycles\n",
                (unsigned long long)s.osExec,
                (unsigned long long)s.osImiss,
                (unsigned long long)s.osReadStall,
                (unsigned long long)s.osWriteStall,
                (unsigned long long)s.osPrefStall,
                (unsigned long long)s.osSpin);
    const double osm = double(s.osMissTotal());
    std::printf("misses: os %llu (block %.1f%%, coherence %.1f%%, other "
                "%.1f%%), user %llu\n",
                (unsigned long long)s.osMissTotal(),
                osm ? 100.0 * s.osMissBlock / osm : 0.0,
                osm ? 100.0 * s.osMissCoherenceTotal() / osm : 0.0,
                osm ? 100.0 * s.osMissOther / osm : 0.0,
                (unsigned long long)s.userMisses);
    std::printf("rate:   %.2f%% of %llu data reads\n",
                100.0 * s.totalMisses() / double(s.totalReads()),
                (unsigned long long)s.totalReads());
    if (bus != nullptr)
        std::printf("bus:    %llu transactions, %llu bytes, busy %llu "
                    "cycles\n",
                    (unsigned long long)bus->totalTransactions,
                    (unsigned long long)bus->totalBytes,
                    (unsigned long long)bus->busyCycles);
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        std::printf("memory: peak rss %ld KB\n", (long)usage.ru_maxrss);
}

int
cmdRun(const Args &args)
{
    const WorkloadProfile profile = profileFor(args);
    const SystemSetup setup = SystemSetup::forKind(args.system);
    SimOptions opts = profile.simOptions();
    opts.modelICache = args.icache;
    RunResult result;
    if (args.stream) {
        result = runOnSource(
            [&profile, &setup]() -> std::unique_ptr<TraceSource> {
                return std::make_unique<SynthTraceSource>(profile,
                                                          setup.coherence);
            },
            args.machine, opts, setup);
    } else {
        const Trace trace = generateTrace(profile, setup.coherence);
        result = runOnTrace(trace, args.machine, opts, setup);
    }
    std::printf("== %s on %s%s ==\n", profile.name, toString(args.system),
                args.stream ? " (streamed)" : "");
    report(result.stats, &result.bus);
    return 0;
}

int
cmdGenerate(const Args &args)
{
    if (args.outFile.empty())
        fatal("generate needs --out <file>");
    const WorkloadProfile profile = profileFor(args);
    const SystemSetup setup = SystemSetup::forKind(args.system);
    if (args.format == TraceFormat::Chunked) {
        // Chunked output streams one quantum at a time to disk; the
        // whole trace is never resident.
        std::ofstream os(args.outFile,
                         std::ios::out | std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '", args.outFile, "' for writing");
        TraceGenerator gen(profile, setup.coherence);
        ChunkedTraceWriter writer(os, gen.numCpus(), gen.updatePages());
        std::vector<RecordStream> chunk(gen.numCpus());
        std::vector<RecordStream *> sinks;
        for (RecordStream &s : chunk)
            sinks.push_back(&s);
        std::size_t records = 0;
        while (!gen.done()) {
            gen.nextQuantum(sinks);
            for (unsigned c = 0; c < gen.numCpus(); ++c) {
                records += chunk[c].size();
                writer.writeChunk(c, chunk[c]);
                chunk[c].clear();
            }
        }
        writer.finish(gen.blockOps());
        if (!os)
            fatal("error writing '", args.outFile, "'");
        std::printf("streamed %zu records (%zu block ops) to %s\n",
                    records, gen.blockOps().size(), args.outFile.c_str());
        return 0;
    }
    const Trace trace = generateTrace(profile, setup.coherence);
    writeTraceFile(args.outFile, trace, args.format);
    std::printf("wrote %zu records (%zu block ops) to %s\n",
                trace.totalRecords(), trace.blockOps().size(),
                args.outFile.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (args.traceFile.empty())
        fatal("replay needs --trace <file>");
    SimOptions opts;
    opts.modelICache = args.icache;
    const SystemSetup setup = SystemSetup::forKind(args.system);
    MachineConfig machine = args.machine;
    RunResult result;
    if (args.stream) {
        // Probe once for the cpu count, then let each simulation pass
        // re-open its own bounded-memory cursor source.
        {
            const FileTraceSource probe(args.traceFile, 1);
            machine.numCpus = probe.numCpus();
        }
        result = runOnSource(
            [&args]() -> std::unique_ptr<TraceSource> {
                return std::make_unique<FileTraceSource>(
                    args.traceFile, args.streamBuffer);
            },
            machine, opts, setup);
    } else {
        const Trace trace = readTraceFile(args.traceFile);
        machine.numCpus = trace.numCpus();
        result = runOnTrace(trace, machine, opts, setup);
    }
    std::printf("== %s on %s%s ==\n", args.traceFile.c_str(),
                toString(args.system), args.stream ? " (streamed)" : "");
    report(result.stats, &result.bus);
    return 0;
}

int
cmdList()
{
    std::printf("workloads:\n");
    for (WorkloadKind kind : allWorkloads)
        std::printf("  %s\n", toString(kind));
    std::printf("systems:\n");
    for (const auto &[name, kind] : systemNames)
        std::printf("  %-12s (%s)\n", name.c_str(), toString(kind));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "--version") {
        std::printf("%s\n", versionString().c_str());
        return 0;
    }
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "generate")
        return cmdGenerate(args);
    if (args.command == "replay")
        return cmdReplay(args);
    if (args.command == "list")
        return cmdList();
    usage();
    fatal("unknown command '", args.command, "'");
}
