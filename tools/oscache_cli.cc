/**
 * @file
 * oscache — command-line driver for the simulator.
 *
 * Examples:
 *   oscache run --workload trfd4 --system bcpref
 *   oscache run --workload shell --system base --l1-size 16384
 *   oscache generate --workload arc2d+fsck --out shell.trace
 *   oscache replay --trace shell.trace --system blk_dma
 *   oscache list
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "common/version.hh"
#include "core/blockop/schemes.hh"
#include "report/experiment.hh"
#include "sim/system.hh"
#include "synth/generator.hh"
#include "trace/io.hh"

using namespace oscache;

namespace
{

const std::map<std::string, WorkloadKind> workloadNames = {
    {"trfd4", WorkloadKind::Trfd4},
    {"trfd_4", WorkloadKind::Trfd4},
    {"trfd+make", WorkloadKind::TrfdMake},
    {"trfdmake", WorkloadKind::TrfdMake},
    {"arc2d+fsck", WorkloadKind::Arc2dFsck},
    {"arc2dfsck", WorkloadKind::Arc2dFsck},
    {"shell", WorkloadKind::Shell},
};

const std::map<std::string, SystemKind> systemNames = {
    {"base", SystemKind::Base},
    {"blk_pref", SystemKind::BlkPref},
    {"blk_bypass", SystemKind::BlkBypass},
    {"blk_bypref", SystemKind::BlkByPref},
    {"blk_dma", SystemKind::BlkDma},
    {"bcoh_reloc", SystemKind::BCohReloc},
    {"bcoh_relup", SystemKind::BCohRelUp},
    {"bcpref", SystemKind::BCPref},
};

void
usage()
{
    std::printf(
        "usage: oscache <command> [options]\n"
        "\n"
        "commands:\n"
        "  run       synthesize a workload and simulate one system\n"
        "  generate  synthesize a workload and write the trace to disk\n"
        "  replay    simulate a saved trace\n"
        "  list      list workloads and systems\n"
        "\n"
        "options:\n"
        "  --workload <name>    trfd4 | trfd+make | arc2d+fsck | shell\n"
        "  --system <name>      base | blk_pref | blk_bypass | blk_bypref\n"
        "                       | blk_dma | bcoh_reloc | bcoh_relup |"
        " bcpref\n"
        "  --l1-size <bytes>    primary data cache size (default 32768)\n"
        "  --l1-line <bytes>    primary line size (default 16)\n"
        "  --l2-size <bytes>    secondary cache size (default 262144)\n"
        "  --l2-line <bytes>    secondary line size (default 32)\n"
        "  --quanta <n>         scheduling quanta to synthesize\n"
        "  --seed <n>           workload random seed\n"
        "  --icache             model the instruction cache in detail\n"
        "  --trace <file>       trace file (replay)\n"
        "  --out <file>         output trace file (generate)\n");
}

struct Args
{
    std::string command;
    std::optional<WorkloadKind> workload;
    SystemKind system = SystemKind::Base;
    MachineConfig machine = MachineConfig::base();
    std::optional<unsigned> quanta;
    std::optional<std::uint64_t> seed;
    bool icache = false;
    std::string traceFile;
    std::string outFile;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        fatal("missing command; try 'oscache list'");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--workload") {
            const std::string name = value();
            const auto it = workloadNames.find(name);
            if (it == workloadNames.end())
                fatal("unknown workload '", name, "'");
            args.workload = it->second;
        } else if (flag == "--system") {
            const std::string name = value();
            const auto it = systemNames.find(name);
            if (it == systemNames.end())
                fatal("unknown system '", name, "'");
            args.system = it->second;
        } else if (flag == "--l1-size") {
            args.machine.l1Size = std::stoul(value());
        } else if (flag == "--l1-line") {
            args.machine.l1LineSize = std::stoul(value());
        } else if (flag == "--l2-size") {
            args.machine.l2Size = std::stoul(value());
        } else if (flag == "--l2-line") {
            args.machine.l2LineSize = std::stoul(value());
        } else if (flag == "--quanta") {
            args.quanta = unsigned(std::stoul(value()));
        } else if (flag == "--seed") {
            args.seed = std::stoull(value());
        } else if (flag == "--icache") {
            args.icache = true;
        } else if (flag == "--trace") {
            args.traceFile = value();
        } else if (flag == "--out") {
            args.outFile = value();
        } else if (flag == "--version") {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "'");
        }
    }
    return args;
}

WorkloadProfile
profileFor(const Args &args)
{
    if (!args.workload)
        fatal("--workload is required");
    WorkloadProfile p = WorkloadProfile::forKind(*args.workload);
    if (args.quanta)
        p.quanta = *args.quanta;
    if (args.seed)
        p.seed = *args.seed;
    return p;
}

void
report(const SimStats &s, const BusSnapshot *bus)
{
    const double total = double(s.totalTime());
    std::printf("time:   user %.1f%%  idle %.1f%%  os %.1f%%\n",
                100.0 * s.userTime() / total, 100.0 * s.idle / total,
                100.0 * s.osTime() / total);
    std::printf("os:     exec %llu  imiss %llu  dread %llu  dwrite %llu  "
                "pref %llu  sync %llu cycles\n",
                (unsigned long long)s.osExec,
                (unsigned long long)s.osImiss,
                (unsigned long long)s.osReadStall,
                (unsigned long long)s.osWriteStall,
                (unsigned long long)s.osPrefStall,
                (unsigned long long)s.osSpin);
    const double osm = double(s.osMissTotal());
    std::printf("misses: os %llu (block %.1f%%, coherence %.1f%%, other "
                "%.1f%%), user %llu\n",
                (unsigned long long)s.osMissTotal(),
                osm ? 100.0 * s.osMissBlock / osm : 0.0,
                osm ? 100.0 * s.osMissCoherenceTotal() / osm : 0.0,
                osm ? 100.0 * s.osMissOther / osm : 0.0,
                (unsigned long long)s.userMisses);
    std::printf("rate:   %.2f%% of %llu data reads\n",
                100.0 * s.totalMisses() / double(s.totalReads()),
                (unsigned long long)s.totalReads());
    if (bus != nullptr)
        std::printf("bus:    %llu transactions, %llu bytes, busy %llu "
                    "cycles\n",
                    (unsigned long long)bus->totalTransactions,
                    (unsigned long long)bus->totalBytes,
                    (unsigned long long)bus->busyCycles);
}

int
cmdRun(const Args &args)
{
    const WorkloadProfile profile = profileFor(args);
    const SystemSetup setup = SystemSetup::forKind(args.system);
    const Trace trace = generateTrace(profile, setup.coherence);
    SimOptions opts = profile.simOptions();
    opts.modelICache = args.icache;
    const RunResult result =
        runOnTrace(trace, args.machine, opts, setup);
    std::printf("== %s on %s ==\n", profile.name, toString(args.system));
    report(result.stats, &result.bus);
    return 0;
}

int
cmdGenerate(const Args &args)
{
    if (args.outFile.empty())
        fatal("generate needs --out <file>");
    const WorkloadProfile profile = profileFor(args);
    const SystemSetup setup = SystemSetup::forKind(args.system);
    const Trace trace = generateTrace(profile, setup.coherence);
    writeTraceFile(args.outFile, trace);
    std::printf("wrote %zu records (%zu block ops) to %s\n",
                trace.totalRecords(), trace.blockOps().size(),
                args.outFile.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (args.traceFile.empty())
        fatal("replay needs --trace <file>");
    const Trace trace = readTraceFile(args.traceFile);
    MachineConfig machine = args.machine;
    machine.numCpus = trace.numCpus();
    SimOptions opts;
    opts.modelICache = args.icache;
    const SystemSetup setup = SystemSetup::forKind(args.system);
    const RunResult result = runOnTrace(trace, machine, opts, setup);
    std::printf("== %s on %s ==\n", args.traceFile.c_str(),
                toString(args.system));
    report(result.stats, &result.bus);
    return 0;
}

int
cmdList()
{
    std::printf("workloads:\n");
    for (WorkloadKind kind : allWorkloads)
        std::printf("  %s\n", toString(kind));
    std::printf("systems:\n");
    for (const auto &[name, kind] : systemNames)
        std::printf("  %-12s (%s)\n", name.c_str(), toString(kind));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "--version") {
        std::printf("%s\n", versionString().c_str());
        return 0;
    }
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "generate")
        return cmdGenerate(args);
    if (args.command == "replay")
        return cmdReplay(args);
    if (args.command == "list")
        return cmdList();
    usage();
    fatal("unknown command '", args.command, "'");
}
