/**
 * @file
 * oscache-sample — SMARTS-style sampled simulation driver.
 *
 * Examples:
 *   oscache-sample plan --plan period=100k,measure=2k,warmup=8k \
 *       --records 100m
 *   oscache-sample run --workload shell --system base \
 *       --plan period=100k,measure=2k,warmup=8k --compare-full
 *   oscache-sample checkpoint --workload shell --save shell.ckpt \
 *       --at 200k
 *   oscache-sample validate --checkpoint shell.ckpt --workload shell
 *
 * `run --compare-full` is the accuracy/speed harness: it replays the
 * same stream once in full and once sampled, then checks that every
 * sufficiently-frequent Table 2 metric's full-run total falls inside
 * the sampled estimate's 95% confidence interval, and reports the
 * wall-clock speedup.  `validate` is the resume-identity harness: a
 * straight-through sampled run and a checkpoint-resumed run must
 * produce bit-identical measured and warm statistics.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/version.hh"
#include "core/runner.hh"
#include "core/system_config.hh"
#include "sample/checkpoint.hh"
#include "sample/plan.hh"
#include "sample/run.hh"
#include "sample/stats.hh"
#include "synth/generator.hh"
#include "synth/stream_source.hh"
#include "trace/source.hh"

using namespace oscache;

namespace
{

const std::map<std::string, WorkloadKind> workloadNames = {
    {"trfd4", WorkloadKind::Trfd4},
    {"trfd_4", WorkloadKind::Trfd4},
    {"trfd+make", WorkloadKind::TrfdMake},
    {"trfdmake", WorkloadKind::TrfdMake},
    {"arc2d+fsck", WorkloadKind::Arc2dFsck},
    {"arc2dfsck", WorkloadKind::Arc2dFsck},
    {"shell", WorkloadKind::Shell},
};

const std::map<std::string, SystemKind> systemNames = {
    {"base", SystemKind::Base},
    {"blk_pref", SystemKind::BlkPref},
    {"blk_bypass", SystemKind::BlkBypass},
    {"blk_bypref", SystemKind::BlkByPref},
    {"blk_dma", SystemKind::BlkDma},
    {"bcoh_reloc", SystemKind::BCohReloc},
    {"bcoh_relup", SystemKind::BCohRelUp},
};

void
usage()
{
    std::printf(
        "usage: oscache-sample <command> [options]\n"
        "\n"
        "commands:\n"
        "  plan        describe a sampling plan (windows, replayed\n"
        "              fraction, escalation ladder)\n"
        "  run         sampled replay of a workload or trace file\n"
        "  checkpoint  sampled replay that saves a live point\n"
        "  validate    resume a live point and check bit-identity\n"
        "              against a straight-through run\n"
        "\n"
        "options:\n"
        "  --plan <p>         sampling plan as key=value pairs\n"
        "                     (period, measure, warmup, error, rounds,\n"
        "                     spinbreak), e.g.\n"
        "                     period=100k,measure=2k,warmup=8k,error=0.05\n"
        "  --records <n>      stream length for 'plan' arithmetic\n"
        "  --workload <name>  trfd4 | trfd+make | arc2d+fsck | shell\n"
        "  --system <name>    base | blk_pref | blk_bypass | blk_bypref\n"
        "                     | blk_dma | bcoh_reloc | bcoh_relup\n"
        "                     (bcpref needs full profiles; unsupported)\n"
        "  --trace <file>     replay a saved trace instead of a workload\n"
        "  --quanta <n>       scheduling quanta to synthesize\n"
        "  --seed <n>         workload random seed\n"
        "  --compare-full     (run) also replay in full; check every\n"
        "                     frequent metric against the sampled CI\n"
        "                     and report the speedup\n"
        "  --json             (run) machine-readable one-line summary\n"
        "  --save <file>      (checkpoint) live-point output path\n"
        "  --at <n>           (checkpoint) take the live point once\n"
        "                     every cpu passed record n (0 = at end)\n"
        "  --checkpoint <f>   (validate) live point to resume\n"
        "  --stream-buffer <n> cursor read-ahead per cpu for --trace\n");
}

struct Args
{
    std::string command;
    std::string planText = "period=100k,measure=2k,warmup=8k";
    std::uint64_t records = 0;
    std::optional<WorkloadKind> workload;
    SystemKind system = SystemKind::Base;
    std::optional<unsigned> quanta;
    std::optional<std::uint64_t> seed;
    std::string traceFile;
    bool compareFull = false;
    bool json = false;
    std::string savePath;
    std::uint64_t saveAt = 0;
    std::string checkpointPath;
    std::size_t streamBuffer = defaultStreamReadAhead;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        fatal("missing command; try 'oscache-sample --help'");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--plan") {
            args.planText = value();
        } else if (flag == "--records") {
            args.records = sample::parseCount(value());
        } else if (flag == "--workload") {
            const std::string name = value();
            const auto it = workloadNames.find(name);
            if (it == workloadNames.end())
                fatal("unknown workload '", name, "'");
            args.workload = it->second;
        } else if (flag == "--system") {
            const std::string name = value();
            const auto it = systemNames.find(name);
            if (it == systemNames.end())
                fatal("unknown or unsupported system '", name, "'");
            args.system = it->second;
        } else if (flag == "--quanta") {
            args.quanta = unsigned(std::stoul(value()));
        } else if (flag == "--seed") {
            args.seed = std::stoull(value());
        } else if (flag == "--trace") {
            args.traceFile = value();
        } else if (flag == "--compare-full") {
            args.compareFull = true;
        } else if (flag == "--json") {
            args.json = true;
        } else if (flag == "--save") {
            args.savePath = value();
        } else if (flag == "--at") {
            args.saveAt = sample::parseCount(value());
        } else if (flag == "--checkpoint") {
            args.checkpointPath = value();
        } else if (flag == "--stream-buffer") {
            args.streamBuffer = std::stoul(value());
            if (args.streamBuffer == 0)
                fatal("--stream-buffer must be >= 1");
        } else if (flag == "--version") {
            std::printf("%s\n", versionString().c_str());
            std::exit(0);
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            fatal("unknown flag '", flag, "'");
        }
    }
    return args;
}

/** The replay inputs shared by run/checkpoint/validate. */
struct Target
{
    TraceSourceFactory open;
    MachineConfig machine = MachineConfig::base();
    SimOptions options;
    SystemSetup setup;
    std::string label;
};

Target
targetFor(const Args &args)
{
    Target t;
    t.setup = SystemSetup::forKind(args.system);
    if (t.setup.hotspotPrefetch)
        fatal("hot-spot prefetch systems need complete profiles; "
              "sampled replay does not support them");
    if (!args.traceFile.empty()) {
        // Index-depth opens: structure is still validated, but
        // multi-GB files are not checksummed end-to-end on every
        // open — that full read would dwarf the sampled replay
        // itself.  `oscache replay` remains the fully-verifying
        // path.
        const auto index = FileTraceSource::ScanDepth::Index;
        const FileTraceSource probe(args.traceFile, 1, index);
        t.machine.numCpus = probe.numCpus();
        const std::string path = args.traceFile;
        const std::size_t buffer = args.streamBuffer;
        t.open = [path, buffer, index]() -> std::unique_ptr<TraceSource> {
            return std::make_unique<FileTraceSource>(path, buffer, index);
        };
        t.label = args.traceFile;
        return t;
    }
    if (!args.workload)
        fatal("need --workload or --trace");
    WorkloadProfile profile = WorkloadProfile::forKind(*args.workload);
    if (args.quanta)
        profile.quanta = *args.quanta;
    if (args.seed)
        profile.seed = *args.seed;
    t.options = profile.simOptions();
    const CoherenceOptions coherence = t.setup.coherence;
    {
        const SynthTraceSource probe(profile, coherence);
        t.machine.numCpus = probe.numCpus();
    }
    t.open = [profile, coherence]() -> std::unique_ptr<TraceSource> {
        return std::make_unique<SynthTraceSource>(profile, coherence);
    };
    t.label = profile.name;
    return t;
}

double
wallMs(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
cmdPlan(const Args &args)
{
    sample::SamplingPlan plan = sample::SamplingPlan::parse(args.planText);
    if (!plan.valid())
        fatal("invalid plan: warmup + measure must fit in the period");
    std::printf("plan:       %s\n", plan.describe().c_str());
    std::printf("period:     %llu records (%llu warm-up + %llu measured "
                "+ %llu skipped)\n",
                (unsigned long long)plan.period,
                (unsigned long long)plan.warmup,
                (unsigned long long)plan.measure,
                (unsigned long long)(plan.period - plan.warmup -
                                     plan.measure));
    std::printf("replayed:   %.2f%% of the stream\n",
                100.0 * double(plan.warmup + plan.measure) /
                    double(plan.period));
    if (args.records > 0)
        std::printf("windows:    %llu over %llu records per cpu\n",
                    (unsigned long long)(args.records / plan.period),
                    (unsigned long long)args.records);
    if (plan.targetError > 0) {
        std::printf("target:     +/-%.1f%% at 95%% confidence, up to %u "
                    "rounds:\n",
                    100.0 * plan.targetError, plan.maxRounds);
        sample::SamplingPlan round = plan;
        for (unsigned r = 1; r <= plan.maxRounds; ++r) {
            std::printf("  round %u:  %s\n", r, round.describe().c_str());
            round = round.escalated();
        }
    }
    return 0;
}

/** Metrics checked by --compare-full (the Table 2 families). */
const sample::SampleMetric checkedMetrics[] = {
    sample::SampleMetric::OsReads,
    sample::SampleMetric::OsMissBlock,
    sample::SampleMetric::OsMissCoherence,
    sample::SampleMetric::OsMissOther,
    sample::SampleMetric::OsMissTotal,
    sample::SampleMetric::UserMisses,
};

/** Metrics with fewer full-run events than this are CI-checked only
 *  informationally; relative CIs on near-zero counts are noise. */
constexpr double ciCheckFloor = 100.0;

int
cmdRun(const Args &args)
{
    const Target t = targetFor(args);
    sample::SampleRunOptions opts;
    opts.plan = sample::SamplingPlan::parse(args.planText);

    const auto sampled_start = std::chrono::steady_clock::now();
    sample::SampleRunOutcome outcome = runSampled(
        t.open, t.machine, t.options, t.setup.blockScheme, opts);
    const double sampled_ms = wallMs(sampled_start);
    if (!outcome.ok)
        fatal("sampled run failed: ", outcome.error);
    const sample::SampleReport &report = *outcome.result.sample;

    RunResult full;
    double full_ms = 0;
    if (args.compareFull) {
        const auto full_start = std::chrono::steady_clock::now();
        full = runOnSource(t.open, t.machine, t.options, t.setup);
        full_ms = wallMs(full_start);
    }

    const double total = double(report.totalRecords);
    bool all_within = true;
    struct Checked
    {
        const char *name;
        double fullValue = 0, est = 0, half = 0;
        bool within = false, counted = false;
    };
    std::vector<Checked> checks;
    if (args.compareFull) {
        const sample::MetricVector actual =
            sample::metricsOf(full.stats);
        for (const sample::SampleMetric m : checkedMetrics) {
            const sample::MetricEstimate &est = report.of(m);
            Checked c;
            c.name = sample::toString(m);
            c.fullValue = actual[std::size_t(m)];
            c.est = est.estimateTotal(total);
            c.half = est.totalHalfwidth(total);
            c.within = std::fabs(c.est - c.fullValue) <= c.half;
            c.counted = c.fullValue >= ciCheckFloor;
            if (c.counted && !c.within)
                all_within = false;
            checks.push_back(c);
        }
    }

    if (args.json) {
        std::printf("{\"target\":\"%s\",\"system\":\"%s\","
                    "\"plan\":\"%s\",\"records\":%llu,"
                    "\"windows\":%zu,\"rounds\":%u,"
                    "\"replayed_frac\":%.6f,\"max_rel_err\":%.6f,"
                    "\"sync_breaks\":%llu,\"wall_ms_sampled\":%.1f",
                    t.label.c_str(), toString(args.system),
                    report.plan.describe().c_str(),
                    (unsigned long long)report.totalRecords,
                    report.windows.size(), report.rounds,
                    report.replayedFraction(), report.maxRelError(),
                    (unsigned long long)report.syncBreaks, sampled_ms);
        if (args.compareFull) {
            std::printf(",\"wall_ms_full\":%.1f,\"speedup\":%.2f,"
                        "\"all_within_ci\":%s,\"metrics\":{",
                        full_ms, full_ms / std::max(sampled_ms, 1e-9),
                        all_within ? "true" : "false");
            bool first = true;
            for (const Checked &c : checks) {
                std::printf("%s\"%s\":{\"full\":%.1f,\"est\":%.1f,"
                            "\"ci95\":%.1f,\"within\":%s}",
                            first ? "" : ",", c.name, c.fullValue, c.est,
                            c.half, c.within ? "true" : "false");
                first = false;
            }
            std::printf("}");
        }
        std::printf("}\n");
    } else {
        std::printf("== %s on %s, sampled ==\n", t.label.c_str(),
                    toString(args.system));
        std::ostringstream os;
        report.render(os);
        std::fputs(os.str().c_str(), stdout);
        std::printf("wall:       %.1f ms sampled\n", sampled_ms);
        if (args.compareFull) {
            std::printf("            %.1f ms full (%.1fx speedup)\n",
                        full_ms, full_ms / std::max(sampled_ms, 1e-9));
            std::printf("accuracy (full-run total vs sampled 95%% CI):\n");
            for (const Checked &c : checks)
                std::printf("  %-18s full %12.0f  est %12.0f +/- %10.0f"
                            "  %s%s\n",
                            c.name, c.fullValue, c.est, c.half,
                            c.within ? "within CI" : "OUTSIDE CI",
                            c.counted ? "" : " (low count, not scored)");
            std::printf("verdict: %s\n",
                        all_within ? "all frequent metrics within CI"
                                   : "CI MISS");
        }
    }
    return args.compareFull && !all_within ? 1 : 0;
}

int
cmdCheckpoint(const Args &args)
{
    if (args.savePath.empty())
        fatal("checkpoint needs --save <file>");
    const Target t = targetFor(args);
    sample::SampleRunOptions opts;
    opts.plan = sample::SamplingPlan::parse(args.planText);
    // Escalation would leave the saved live point belonging to a
    // superseded round; pin the plan for reproducible resumes.
    opts.plan.targetError = 0;
    opts.saveCheckpoint = args.savePath;
    opts.checkpointAfter = args.saveAt;

    sample::SampleRunOutcome outcome = runSampled(
        t.open, t.machine, t.options, t.setup.blockScheme, opts);
    if (!outcome.ok)
        fatal("checkpoint run failed: ", outcome.error);
    const sample::SampleReport &report = *outcome.result.sample;
    std::ifstream probe(args.savePath,
                        std::ios::in | std::ios::binary | std::ios::ate);
    const std::string taken =
        args.saveAt == 0 ? "at end of run"
                         : "after record " + std::to_string(args.saveAt);
    std::printf("== %s on %s, sampled + live point ==\n", t.label.c_str(),
                toString(args.system));
    std::printf("plan:       %s\n", report.plan.describe().c_str());
    std::printf("windows:    %zu before the live point\n",
                report.windows.size());
    std::printf("live point: %s (%lld bytes), taken %s\n",
                args.savePath.c_str(),
                probe ? (long long)probe.tellg() : -1LL, taken.c_str());
    return 0;
}

int
cmdValidate(const Args &args)
{
    if (args.checkpointPath.empty())
        fatal("validate needs --checkpoint <file>");
    const Target t = targetFor(args);

    // Peek at the header first: the stored plan drives the reference
    // run, and a corrupt file must fail cleanly here.
    sample::SamplingPlan plan;
    {
        std::ifstream is(args.checkpointPath,
                         std::ios::in | std::ios::binary);
        if (!is)
            fatal("cannot open '", args.checkpointPath, "'");
        sample::CheckpointReader reader(is);
        std::string why;
        if (!reader.readHeader(t.machine, &why)) {
            std::fprintf(stderr, "oscache-sample: %s: %s\n",
                         args.checkpointPath.c_str(), why.c_str());
            return 1;
        }
        plan = reader.plan();
    }

    // Resumed leg: continue the saved run to the end of the stream.
    sample::SampleRunOptions resume_opts;
    resume_opts.resumeCheckpoint = args.checkpointPath;
    sample::SampleRunOutcome resumed = runSampled(
        t.open, t.machine, t.options, t.setup.blockScheme, resume_opts);
    if (!resumed.ok) {
        std::fprintf(stderr, "oscache-sample: resume failed: %s\n",
                     resumed.error.c_str());
        return 1;
    }

    // Reference leg: the same plan straight through, no escalation.
    sample::SampleRunOptions ref_opts;
    ref_opts.plan = plan;
    ref_opts.plan.targetError = 0;
    sample::SampleRunOutcome reference = runSampled(
        t.open, t.machine, t.options, t.setup.blockScheme, ref_opts);
    if (!reference.ok)
        fatal("reference run failed: ", reference.error);

    const bool measured_same =
        resumed.result.stats == reference.result.stats;
    const bool warm_same = resumed.warmStats == reference.warmStats;
    const bool windows_same =
        resumed.result.sample->windows == reference.result.sample->windows;
    std::printf("== validate %s against %s on %s ==\n",
                args.checkpointPath.c_str(), t.label.c_str(),
                toString(args.system));
    std::printf("plan:       %s\n", plan.describe().c_str());
    std::printf("windows:    %zu resumed / %zu reference\n",
                resumed.result.sample->windows.size(),
                reference.result.sample->windows.size());
    std::printf("measured:   %s\n",
                measured_same ? "bit-identical" : "MISMATCH");
    std::printf("warm-up:    %s\n",
                warm_same ? "bit-identical" : "MISMATCH");
    std::printf("windows:    %s\n",
                windows_same ? "bit-identical" : "MISMATCH");
    return measured_same && warm_same && windows_same ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "plan")
        return cmdPlan(args);
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "checkpoint")
        return cmdCheckpoint(args);
    if (args.command == "validate")
        return cmdValidate(args);
    usage();
    fatal("unknown command '", args.command, "'");
}
