#!/bin/sh
# Full verification sweep: build with ASan+UBSan, run the test suite,
# run the lint selftest, then generate and lint (and re-simulate with
# the invariant checker) a trace for every seed workload.
#
# Usage: tools/run_checks.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-checks"}
jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure ($build) =="
cmake -B "$build" -S "$repo" -DOSCACHE_SANITIZE=address,undefined

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== lint selftest =="
"$build/tools/oscache-lint" selftest

# The parallel experiment scheduler is the one concurrent subsystem;
# build it (and the thread-safe trace cache under it) with TSan and
# run the Exp* suites plus the end-to-end bench smoke.
tsan_build="$build-tsan"
echo "== configure tsan ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DOSCACHE_SANITIZE=thread

echo "== build tsan =="
cmake --build "$tsan_build" -j "$jobs" --target test_exp oscache_bench

echo "== ctest tsan (Exp*) =="
ctest --test-dir "$tsan_build" --output-on-failure -j "$jobs" -R '^Exp'

echo "== bench smoke (tsan) =="
"$tsan_build/tools/oscache-bench" --smoke --jobs 4 --quiet \
    --cache-dir "$tsan_build/bench_smoke_cache" \
    --results "$tsan_build/bench_smoke_results" all

tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
for workload in trfd4 trfd+make arc2d+fsck shell; do
    echo "== lint $workload =="
    trace="$tracedir/$(echo "$workload" | tr -d '+').trace"
    "$build/tools/oscache" generate --workload "$workload" --quanta 4 \
        --out "$trace"
    "$build/tools/oscache-lint" trace --trace "$trace" --simulate
done

echo "all checks passed"
