#!/bin/sh
# Full verification sweep: build with ASan+UBSan, run the test suite,
# run the lint selftest, then generate and lint (and re-simulate with
# the invariant checker) a trace for every seed workload.
#
# Usage: tools/run_checks.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-checks"}
jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure ($build) =="
cmake -B "$build" -S "$repo" -DOSCACHE_SANITIZE=address,undefined

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== lint selftest =="
"$build/tools/oscache-lint" selftest

# The parallel experiment scheduler is the one concurrent subsystem;
# build it (and the thread-safe trace cache under it) with TSan and
# run the Exp* suites plus the end-to-end bench smoke.
tsan_build="$build-tsan"
echo "== configure tsan ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DOSCACHE_SANITIZE=thread

echo "== build tsan =="
cmake --build "$tsan_build" -j "$jobs" --target test_exp oscache_bench

echo "== ctest tsan (Exp*) =="
ctest --test-dir "$tsan_build" --output-on-failure -j "$jobs" -R '^Exp'

echo "== bench smoke (tsan) =="
"$tsan_build/tools/oscache-bench" --smoke --jobs 4 --quiet \
    --cache-dir "$tsan_build/bench_smoke_cache" \
    --results "$tsan_build/bench_smoke_results" all

tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT

# Observability: the profiler must reproduce the engine's hot-spot
# selection, and the exported timeline must be valid Chrome trace JSON.
echo "== observability (oscache-prof) =="
prof_out="$tracedir/prof.out"
prof_trace="$tracedir/prof_timeline.json"
"$build/tools/oscache-prof" --workload shell --quanta 2 \
    --hotspots --timeline "$prof_trace" | tee "$prof_out"
grep -q "hot-spot cross-check: AGREE" "$prof_out" || {
    echo "observability check failed: profiler disagrees with engine" >&2
    exit 1
}
if command -v python3 > /dev/null 2>&1; then
    python3 - "$prof_trace" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "timeline exported no events"
phases = {e["ph"] for e in events}
assert "X" in phases, "no complete spans in timeline"
print("timeline JSON ok: %d events" % len(events))
EOF
else
    grep -q '"traceEvents"' "$prof_trace" || {
        echo "timeline export is not Chrome trace JSON" >&2
        exit 1
    }
fi
for workload in trfd4 trfd+make arc2d+fsck shell; do
    echo "== lint $workload =="
    trace="$tracedir/$(echo "$workload" | tr -d '+').trace"
    "$build/tools/oscache" generate --workload "$workload" --quanta 4 \
        --out "$trace"
    "$build/tools/oscache-lint" trace --trace "$trace" --simulate
done

echo "all checks passed"
