#!/bin/sh
# Full verification sweep: build with ASan+UBSan, run the test suite,
# run the lint selftest, then generate and lint (and re-simulate with
# the invariant checker) a trace for every seed workload.
#
# Usage: tools/run_checks.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-checks"}
jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure ($build) =="
cmake -B "$build" -S "$repo" -DOSCACHE_SANITIZE=address,undefined

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"


# Static-analysis stage: clang-tidy over the sources changed most
# often (the checker profile lives in .clang-tidy).  Skipped when the
# binary is not installed; any warning fails the sweep.
echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
    cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        > /dev/null
    find "$repo/src" "$repo/tools" -name '*.cc' -print0 |
        xargs -0 -P "$jobs" -n 8 clang-tidy -p "$build" \
            --warnings-as-errors='*' --quiet
else
    echo "clang-tidy not installed; skipping"
fi

echo "== lint selftest =="
"$build/tools/oscache-lint" selftest

# The parallel experiment scheduler is the one concurrent subsystem;
# build it (and the thread-safe trace cache under it) with TSan and
# run the Exp* and Stream* suites plus the end-to-end bench smoke.
tsan_build="$build-tsan"
echo "== configure tsan ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DOSCACHE_SANITIZE=thread

echo "== build tsan =="
cmake --build "$tsan_build" -j "$jobs" --target test_exp test_stream \
    oscache_bench

echo "== ctest tsan (Exp*, Stream*) =="
ctest --test-dir "$tsan_build" --output-on-failure -j "$jobs" \
    -R '^Exp|^Stream'

echo "== bench smoke (tsan) =="
"$tsan_build/tools/oscache-bench" --smoke --jobs 4 --quiet \
    --cache-dir "$tsan_build/bench_smoke_cache" \
    --results "$tsan_build/bench_smoke_results" all

echo "== bench smoke streamed (tsan) =="
"$tsan_build/tools/oscache-bench" --smoke --jobs 4 --quiet --stream \
    --cache-dir "$tsan_build/bench_smoke_cache_stream" \
    --results "$tsan_build/bench_smoke_results_stream" all

# Memory stage: a streamed replay of a trace 10x the seed length must
# stay under a fixed RSS ceiling — the point of the cursor pipeline.
# This runs against the ASan build, whose shadow memory and redzones
# dominate the footprint: streamed replay measures ~0.5 GB where the
# plain build needs ~25 MB, and materializing the same trace costs
# ~1 GB.  The 768 MB ceiling sits between those, so it only trips if
# streaming regresses to whole-trace buffering.
echo "== memory ceiling (streamed long trace) =="
memdir=$(mktemp -d)
rss_limit_kb=786432
"$build/tools/oscache" generate --workload shell --quanta 360 \
    --format chunked --out "$memdir/long.otc"
if [ -x /usr/bin/time ]; then
    /usr/bin/time -v "$build/tools/oscache" replay \
        --trace "$memdir/long.otc" --system base --stream \
        > "$memdir/replay.out" 2> "$memdir/time.out"
    rss_kb=$(awk -F': ' '/Maximum resident set size/ {print $2}' \
        "$memdir/time.out")
else
    # No GNU time in this environment: the CLI reports its own
    # getrusage() high-water mark on every run.
    "$build/tools/oscache" replay --trace "$memdir/long.otc" \
        --system base --stream > "$memdir/replay.out"
    rss_kb=$(awk '/peak rss/ {print $4}' "$memdir/replay.out")
fi
echo "streamed replay peak RSS: ${rss_kb} KB (ceiling ${rss_limit_kb} KB)"
[ -n "$rss_kb" ] && [ "$rss_kb" -le "$rss_limit_kb" ] || {
    echo "memory check failed: RSS ${rss_kb:-unknown} KB >" \
        "${rss_limit_kb} KB" >&2
    rm -rf "$memdir"
    exit 1
}
rm -rf "$memdir"

tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT

# Observability: the profiler must reproduce the engine's hot-spot
# selection, and the exported timeline must be valid Chrome trace JSON.
echo "== observability (oscache-prof) =="
prof_out="$tracedir/prof.out"
prof_trace="$tracedir/prof_timeline.json"
"$build/tools/oscache-prof" --workload shell --quanta 2 \
    --hotspots --timeline "$prof_trace" | tee "$prof_out"
grep -q "hot-spot cross-check: AGREE" "$prof_out" || {
    echo "observability check failed: profiler disagrees with engine" >&2
    exit 1
}
if command -v python3 > /dev/null 2>&1; then
    python3 - "$prof_trace" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "timeline exported no events"
phases = {e["ph"] for e in events}
assert "X" in phases, "no complete spans in timeline"
print("timeline JSON ok: %d events" % len(events))
EOF
else
    grep -q '"traceEvents"' "$prof_trace" || {
        echo "timeline export is not Chrome trace JSON" >&2
        exit 1
    }
fi
for workload in trfd4 trfd+make arc2d+fsck shell; do
    echo "== lint $workload =="
    trace="$tracedir/$(echo "$workload" | tr -d '+').trace"
    "$build/tools/oscache" generate --workload "$workload" --quanta 4 \
        --out "$trace"
    "$build/tools/oscache-lint" trace --trace "$trace" --simulate
done

# Differential-testing stage: the engine must agree with the
# independent oracle on every full workload, on a fixed 2000-trace
# fuzz corpus (reproducible: seeds 0..1999; ~40% of the cases draw a
# multi-socket NUMA geometry), and on a short fresh-seed run whose
# base seed is printed so any divergence can be replayed with
# `oscache-dft fuzz --seed-base N --count 1`.  The 19 golden
# experiment cells must match the blessed snapshot
# (tests/golden/cells.jsonl; re-bless with `oscache-dft golden
# --bless` after an intentional behaviour change).
echo "== dft: oracle vs engine (full workloads) =="
"$build/tools/oscache-dft" workloads --jobs "$jobs"

echo "== dft: fuzz, fixed corpus (2000 traces, seeds 0..1999) =="
"$build/tools/oscache-dft" fuzz --count 2000 --seed-base 0 \
    --jobs "$jobs" --quiet

echo "== dft: fuzz, fresh seeds (20s wall-clock) =="
"$build/tools/oscache-dft" fuzz --seconds 20 --jobs "$jobs" --quiet

echo "== dft: golden cells =="
"$build/tools/oscache-dft" golden --check \
    --file "$repo/tests/golden/cells.jsonl" \
    --scratch "$tracedir/dft_golden" --jobs "$jobs"


# Model-checking stage: the declarative protocol tables must survive
# an exhaustive sweep of every scheme at several configuration sizes,
# and the engine must conform to the tables (0 forbidden transitions,
# >= 90% spec-edge coverage) over the four paper workloads.
echo "== verify: exhaustive exploration (all schemes) =="
"$build/tools/oscache-verify" explore --scheme all --cpus 2 --addrs 2
"$build/tools/oscache-verify" explore --scheme all --cpus 3 --addrs 2 \
    --sets 2
"$build/tools/oscache-verify" explore --scheme all --cpus 4 --addrs 2

echo "== verify: implementation conformance (4 workloads) =="
"$build/tools/oscache-verify" conform --scheme all --min-coverage 90

echo "== verify: two-level 2x2 geometry (MESI, MSI) =="
"$build/tools/oscache-verify" explore --scheme mesi --cpus 4 \
    --addrs 2 --sockets 2
"$build/tools/oscache-verify" explore --scheme msi --cpus 4 \
    --addrs 2 --sockets 2
"$build/tools/oscache-verify" conform --scheme mesi --sockets 2 \
    --min-coverage 100
"$build/tools/oscache-verify" conform --scheme msi --sockets 2 \
    --min-coverage 100


# NUMA stage: the two-level interconnect's latency accounting,
# directory-filter precision, and link observability (`ctest -L Numa`
# — the ASan ctest above already ran it; this names the gate), plus
# one end-to-end server-class cell on the 2x4 machine through the
# bench scheduler.
echo "== numa: tier tests (label Numa) =="
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L Numa

echo "== numa: server-mix smoke cell (2x4 machine) =="
"$build/tools/oscache-bench" --smoke --jobs 2 --quiet \
    --cache-dir "$tracedir/numa_smoke_cache" \
    --results "$tracedir/numa_smoke_results" numa


# Sampling stage: the sampled estimator must cover the full-run total
# of every frequent Table 2 metric within its own 95% CI (the CLI
# exits non-zero on a CI miss), a resumed live point must finish
# bit-identical to the straight-through run, and the dft oracle must
# agree with the engine on every replayed access of a sampled run.
echo "== sample: accuracy vs full run (shell) =="
"$build/tools/oscache-sample" run --workload shell --system base \
    --plan period=40k,measure=2k,warmup=12k --compare-full

echo "== sample: checkpoint resume is bit-identical (trfd4) =="
"$build/tools/oscache-sample" checkpoint --workload trfd4 \
    --save "$tracedir/sample_resume.ckpt" --at 150k \
    --plan period=25k,measure=2k,warmup=5k
"$build/tools/oscache-sample" validate --workload trfd4 \
    --checkpoint "$tracedir/sample_resume.ckpt"

echo "== sample: dft oracle on sampled windows =="
"$build/tools/oscache-dft" sampled --jobs "$jobs"


# Serving stage: the sharded fleet must survive a worker SIGKILL with
# exactly-once cell execution, and the union of the rows streamed to
# 8 concurrent clients must be byte-identical to a single-process
# canonical bench run (this is the same script ctest runs as
# oscache_serve_smoke, here against the sanitized build).
echo "== serve: fleet smoke (4 workers, 8 clients, kill -9) =="
"$repo/tools/serve_smoke.sh" "$build/tools/oscache-served" \
    "$build/tools/oscache-servectl" "$build/tools/oscache-bench" \
    "$tracedir/serve_smoke"


# Performance stage: an optimized build must (a) still pass the
# batched-replay/MarkTable safety net (`ctest -L Perf` — the ASan
# ctest above already ran it unoptimized) and (b) hold the replay
# throughput recorded in BENCH_perf.json.  The replay benchmarks run
# flat-bus machines, so this doubles as the guard that the NUMA
# branches stayed off the single-socket fast path.  Throughput is measured as
# the perf_simulator replay section (min-of-2 per workload) on a
# Release+LTO tree; any workload more than 5% below the latest
# BENCH_perf.json entry fails the sweep.  After an intentional
# engine change, re-baseline with `tools/bench_append.sh perf`.
perf_build="$build-perf"
echo "== configure perf ($perf_build, Release+LTO) =="
cmake -B "$perf_build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON > /dev/null

echo "== build perf =="
cmake --build "$perf_build" -j "$jobs" --target perf_simulator \
    test_perf_equiv

echo "== ctest perf (label Perf, optimized build) =="
ctest --test-dir "$perf_build" --output-on-failure -j "$jobs" -L Perf

# Three full invocations, best per workload: a single run can lose
# 15% to transient machine load, which would flake a 5% gate.
echo "== perf gate: replay throughput vs BENCH_perf.json =="
for run in 1 2 3; do
    OSCACHE_BENCH_PERF_OUT="$tracedir/perf-$run.json" \
        "$perf_build/bench/perf_simulator" --benchmark_filter=NONE \
        > /dev/null
done
python3 - "$repo/BENCH_perf.json" "$tracedir"/perf-*.json << 'EOF'
import json, sys

bench_path = sys.argv[1]
measured = {}
for perf_path in sys.argv[2:]:
    text = open(perf_path).read()
    i = text.index('"replay"')
    j = text.index('[', i)
    k = text.index(']', j)
    for r in json.loads(text[j:k + 1]):
        best = measured.get(r["workload"])
        if best is None or r["accesses_per_sec"] > best["accesses_per_sec"]:
            measured[r["workload"]] = r

baseline_entry = json.load(open(bench_path))["entries"][-1]
baseline = {r["workload"]: r for r in baseline_entry["workloads"]}

failed = False
for name, base in sorted(baseline.items()):
    got = measured.get(name)
    if got is None:
        print("perf gate: workload %s missing from run" % name)
        failed = True
        continue
    ratio = got["accesses_per_sec"] / base["accesses_per_sec"]
    status = "ok" if ratio >= 0.95 else "REGRESSED"
    print("  %-11s %6.2fM acc/s vs baseline %6.2fM (%.2fx) %s"
          % (name, got["accesses_per_sec"] / 1e6,
             base["accesses_per_sec"] / 1e6, ratio, status))
    if ratio < 0.95:
        failed = True
if failed:
    print("perf gate failed: >5%% regression vs entry dated %s (%s)"
          % (baseline_entry["date"], baseline_entry["label"]))
    sys.exit(1)
print("perf gate passed (baseline: %s)" % baseline_entry["label"])
EOF

echo "all checks passed"
