/**
 * @file
 * oscache-verify: protocol model checker and conformance driver.
 *
 * Three subcommands:
 *
 *   oscache-verify explore [--scheme S|all] [--cpus N] [--addrs N]
 *                          [--sets N] [--wb N] [--counterexample F]
 *       Exhaustively enumerate every global state the declarative
 *       protocol tables can reach in a small configuration and check
 *       the safety invariants (SWMR, data value, write-buffer
 *       consistency, no stuck states) at each one.  On a violation
 *       the initiating-event path is printed and, with
 *       --counterexample, lowered to a replayable v3 trace.
 *
 *   oscache-verify conform [--scheme S|all] [--quanta N]
 *                          [--min-coverage PCT]
 *       Replay the paper's four workloads with the implementation in
 *       src/mem, extract every observed secondary-cache transition,
 *       and diff it against the declarative tables: forbidden
 *       transitions fail the run, unexercised spec edges are reported
 *       as coverage.
 *
 *   oscache-verify dot [--scheme S]
 *       Print the scheme's state machine in Graphviz DOT form.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "trace/io.hh"
#include "verif/conform.hh"
#include "verif/explore.hh"
#include "verif/spec.hh"

using namespace oscache;
using namespace oscache::verif;

namespace
{

void
usage()
{
    std::printf(
        "usage: oscache-verify explore [options]\n"
        "       oscache-verify conform [options]\n"
        "       oscache-verify dot --scheme S\n"
        "\n"
        "common options:\n"
        "  --scheme S     mesi | msi | mesi-update | mesi-bypass |\n"
        "                 mesi-dma | all (default all)\n"
        "  --sockets N    two-level interconnect sockets (must divide\n"
        "                 the processor count, default 1 = flat bus);\n"
        "                 applies to explore and conform\n"
        "\n"
        "explore options:\n"
        "  --cpus N           processors (2..4, default 2)\n"
        "  --addrs N          addresses (1..2, default 2)\n"
        "  --sets N           cache sets (1..2, default 1)\n"
        "  --wb N             bypass write-buffer depth (0..2,\n"
        "                     default 2)\n"
        "  --counterexample F write a violation's replayable v3 trace\n"
        "                     to F\n"
        "\n"
        "conform options:\n"
        "  --quanta N         workload length override (default full)\n"
        "  --min-coverage P   fail below P%% spec-edge coverage\n"
        "                     (default 90)\n");
}

std::vector<ProtoScheme>
schemesFor(const std::string &name)
{
    if (name == "all") {
        std::vector<ProtoScheme> all;
        for (std::size_t i = 0; i < numSchemes; ++i)
            all.push_back(static_cast<ProtoScheme>(i));
        return all;
    }
    ProtoScheme scheme;
    if (!parseScheme(name, scheme))
        fatal("unknown scheme '", name,
              "' (mesi, msi, mesi-update, mesi-bypass, mesi-dma, all)");
    return {scheme};
}

int
runExplore(const std::vector<ProtoScheme> &schemes,
           const ExploreConfig &cfg, const std::string &cex_path)
{
    int rc = 0;
    for (ProtoScheme scheme : schemes) {
        const SchemeSpec &spec = schemeSpec(scheme);
        const std::string err = validateSpec(spec);
        if (!err.empty()) {
            std::printf("explore %-12s FAIL (table: %s)\n",
                        std::string(toString(scheme)).c_str(),
                        err.c_str());
            rc = 1;
            continue;
        }
        const ExploreResult result = explore(spec, cfg);
        if (result.ok()) {
            std::printf("explore %-12s ok: %llu states, %llu "
                        "transitions, 0 violations\n",
                        std::string(toString(scheme)).c_str(),
                        (unsigned long long)result.states,
                        (unsigned long long)result.transitions);
            continue;
        }
        rc = 1;
        std::printf("explore %-12s FAIL after %llu states:\n",
                    std::string(toString(scheme)).c_str(),
                    (unsigned long long)result.states);
        for (const CheckFinding &f : result.findings)
            std::printf("  %s\n", format(f).c_str());
        std::printf("  path (%zu steps):\n", result.path.size());
        for (const ExploreStep &step : result.path)
            std::printf("    %s\n", formatStep(step).c_str());
        if (!cex_path.empty()) {
            const Counterexample ce =
                realizeCounterexample(spec, cfg, result.path);
            writeTraceFile(cex_path, ce.trace, TraceFormat::Chunked);
            std::printf("  counterexample trace: %s (%u cpus, "
                        "direct-mapped %u-byte caches, %u-byte "
                        "lines)\n",
                        cex_path.c_str(), ce.machine.numCpus,
                        ce.machine.l2Size, ce.machine.l2LineSize);
        }
    }
    return rc;
}

int
runConform(const std::vector<ProtoScheme> &schemes, unsigned quanta,
           double min_coverage, unsigned sockets)
{
    int rc = 0;
    for (ProtoScheme scheme : schemes) {
        const ConformReport rep = runConformance(scheme, quanta, sockets);
        const double pct = rep.coverage() * 100.0;
        const bool ok = rep.forbidden == 0 && pct >= min_coverage;
        std::printf("conform %-12s %s: %llu transitions observed, "
                    "%llu forbidden, coverage %zu/%zu (%.1f%%)\n",
                    std::string(toString(scheme)).c_str(),
                    ok ? "ok" : "FAIL",
                    (unsigned long long)rep.observed,
                    (unsigned long long)rep.forbidden, rep.specCovered,
                    rep.specTotal, pct);
        for (const CheckFinding &f : rep.findings)
            std::printf("  %s\n", format(f).c_str());
        if (!ok || !rep.uncovered.empty())
            for (const std::string &edge : rep.uncovered)
                std::printf("  unexercised: %s\n", edge.c_str());
        if (!ok)
            rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    if (command == "--version") {
        std::printf("%s\n", versionString().c_str());
        return 0;
    }

    std::string scheme = "all";
    ExploreConfig cfg;
    std::string cex_path;
    unsigned quanta = 0;
    double min_coverage = 90.0;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--scheme") {
            scheme = value();
        } else if (arg == "--cpus") {
            cfg.cpus = unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--addrs") {
            cfg.addrs =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--sets") {
            cfg.sets = unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--wb") {
            cfg.wbDepth =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--sockets") {
            cfg.sockets =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--counterexample") {
            cex_path = value();
        } else if (arg == "--quanta") {
            quanta = unsigned(std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--min-coverage") {
            min_coverage = std::strtod(value().c_str(), nullptr);
        } else {
            usage();
            fatal("unknown option ", arg);
        }
    }

    if (command == "explore")
        return runExplore(schemesFor(scheme), cfg, cex_path);
    if (command == "conform")
        return runConform(schemesFor(scheme), quanta, min_coverage,
                          cfg.sockets);
    if (command == "dot") {
        for (ProtoScheme s : schemesFor(scheme))
            std::printf("%s", specDot(schemeSpec(s)).c_str());
        return 0;
    }
    usage();
    fatal("unknown command ", command);
}
