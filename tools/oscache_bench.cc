/**
 * @file
 * oscache-bench: the unified experiment driver.
 *
 * Runs any subset of the paper's figures, tables, and ablations
 * through the parallel scheduler in src/exp, sharing identical cells
 * across experiments, persisting generated traces in an on-disk
 * artifact cache, and streaming every completed cell into a
 * JSONL/CSV results sink.
 *
 *   oscache-bench --jobs 8 figure3 table2
 *   oscache-bench all
 *   oscache-bench --smoke --jobs 2 all
 *   oscache-bench --list
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "exp/artifact_cache.hh"
#include "exp/driver.hh"
#include "exp/registry.hh"
#include "obs/options.hh"
#include "obs/timeline.hh"
#include "sample/plan.hh"

using namespace oscache;

namespace
{

void
usage()
{
    std::printf(
        "usage: oscache-bench [options] <experiment|group>...\n"
        "\n"
        "Experiments are registry names (figure1..figure7, "
        "table1..table5,\n"
        "ablation_*, numa_server) or the groups: figures, tables,\n"
        "ablations, numa, all.\n"
        "\n"
        "options:\n"
        "  --jobs N        worker threads (default 1)\n"
        "  --smoke         run one representative cell per experiment\n"
        "  --cache-dir D   trace artifact cache directory\n"
        "                  (default .oscache-artifacts)\n"
        "  --no-cache      disable the persistent trace cache\n"
        "  --stream        pull records through streaming cursors\n"
        "                  (bounded memory; synthesize on demand or\n"
        "                  replay chunked artifacts incrementally)\n"
        "  --stream-buffer N\n"
        "                  cursor read-ahead in records per cpu\n"
        "                  (default 4096)\n"
        "  --trace-cache-mb N\n"
        "                  in-memory trace cache cap in MiB\n"
        "                  (default 512; 0 = unbounded)\n"
        "  --results BASE  write BASE.jsonl and BASE.csv\n"
        "                  (default oscache_results; - disables)\n"
        "  --quiet         no per-cell progress lines\n"
        "  --metrics       collect per-cell metrics (src/obs) and fold\n"
        "                  them into the JSONL results\n"
        "  --canonical-results\n"
        "                  zero run-varying result fields (wall_ms,\n"
        "                  rss, trace_mode, shared) so the JSONL is\n"
        "                  byte-comparable with an oscache-served run\n"
        "  --sample PLAN   replay cells under a SMARTS-style sampling\n"
        "                  plan (key=value pairs: period, measure,\n"
        "                  warmup, error, rounds, spinbreak; e.g.\n"
        "                  period=100k,measure=2k,warmup=8k,error=0.05)\n"
        "                  and report confidence intervals\n"
        "  --timeline F    write a Chrome trace of the scheduler's\n"
        "                  cell spans to F\n"
        "  --list          list the registered experiments and exit\n"
        "  --version       print build identification and exit\n");
}

void
listExperiments()
{
    std::printf("%-28s %-5s  %s\n", "name", "cells", "title");
    for (const Experiment &e : experimentRegistry())
        std::printf("%-28s %5zu  %s\n", e.name.c_str(), e.cells.size(),
                    e.title.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    bool smoke = false;
    bool quiet = false;
    bool metrics = false;
    bool stream = false;
    bool canonical = false;
    std::size_t stream_buffer = defaultStreamReadAhead;
    std::size_t trace_cache_bytes = defaultTraceCacheBytes;
    std::string timeline_file;
    std::string sample_plan;
    std::string cache_dir = ".oscache-artifacts";
    std::string results_base = "oscache_results";
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            jobs = unsigned(std::strtoul(value().c_str(), nullptr, 10));
            if (jobs == 0)
                fatal("--jobs must be >= 1");
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--no-cache") {
            cache_dir.clear();
        } else if (arg == "--stream") {
            stream = true;
        } else if (arg == "--stream-buffer") {
            stream_buffer = std::strtoul(value().c_str(), nullptr, 10);
            if (stream_buffer == 0)
                fatal("--stream-buffer must be >= 1");
        } else if (arg == "--trace-cache-mb") {
            trace_cache_bytes =
                std::strtoul(value().c_str(), nullptr, 10) *
                std::size_t{1024} * 1024;
        } else if (arg == "--results") {
            results_base = value();
            if (results_base == "-")
                results_base.clear();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--metrics") {
            metrics = true;
        } else if (arg == "--canonical-results") {
            canonical = true;
        } else if (arg == "--sample") {
            sample_plan = value();
        } else if (arg == "--timeline") {
            timeline_file = value();
        } else if (arg == "--list") {
            listExperiments();
            return 0;
        } else if (arg == "--version") {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option ", arg);
        } else {
            names.push_back(arg);
        }
    }

    if (names.empty()) {
        usage();
        return 1;
    }

    const std::vector<const Experiment *> selected =
        resolveExperiments(names);

    std::size_t total_cells = 0;
    for (const Experiment *e : selected)
        total_cells += smoke ? 1 : e->cells.size();
    std::printf("oscache-bench: %zu experiment%s, %zu cell%s, %u job%s%s\n",
                selected.size(), selected.size() == 1 ? "" : "s",
                total_cells, total_cells == 1 ? "" : "s", jobs,
                jobs == 1 ? "" : "s", smoke ? " (smoke)" : "");

    std::unique_ptr<TraceStore> store;
    if (!cache_dir.empty())
        store = std::make_unique<TraceStore>(cache_dir);

    if (metrics) {
        // Cells call runWorkload() with stock options; the runner
        // merges in this process-wide default.
        ObsOptions obs;
        obs.metrics = true;
        setGlobalObsOptions(obs);
    }
    std::unique_ptr<Timeline> timeline;
    if (!timeline_file.empty())
        timeline = std::make_unique<Timeline>(std::size_t{1} << 16);

    DriverOptions options;
    options.jobs = jobs;
    options.smoke = smoke;
    options.store = store.get();
    options.stream = stream;
    options.streamBufferRecords = stream_buffer;
    options.traceCacheBytes = trace_cache_bytes;
    options.resultsBase = results_base;
    options.canonicalResults = canonical;
    options.timeline = timeline.get();
    if (!sample_plan.empty())
        options.samplePlan = sample::SamplingPlan::parse(sample_plan);
    std::atomic<unsigned> done{0};
    if (!quiet)
        options.progress = [&done](const std::string &label) {
            std::printf("  [%u] %s\n", done.fetch_add(1) + 1,
                        label.c_str());
            std::fflush(stdout);
        };

    const DriverReport report = runExperiments(selected, options);

    for (const ExperimentReport &er : report.experiments) {
        if (er.rendered.empty())
            continue;
        std::printf("\n### %s: %s\n\n", er.experiment->name.c_str(),
                    er.experiment->title.c_str());
        std::fputs(er.rendered.c_str(), stdout);
    }

    std::printf("\n--- summary ---\n");
    std::printf("cells simulated: %u (+%u shared)\n", report.cellsRun,
                report.cellsShared);
    std::printf("cell cpu time:   %.1f s\n", report.totalCellMs / 1000.0);
    std::printf("trace source:    %s\n",
                stream ? "streamed cursors" : "materialized");
    if (!sample_plan.empty())
        std::printf("sampling:        %s\n",
                    options.samplePlan->describe().c_str());
    std::printf("traces:          %llu generated, %llu loaded from disk, "
                "%llu in-memory hits, %llu evicted\n",
                (unsigned long long)report.traceStats.generated,
                (unsigned long long)report.traceStats.persistentHits,
                (unsigned long long)report.traceStats.memoryHits,
                (unsigned long long)report.traceStats.evictions);
    if (store)
        std::printf("artifact cache:  %s (%llu hits, %llu misses, "
                    "%llu rejected)\n",
                    store->directory().c_str(),
                    (unsigned long long)store->hits(),
                    (unsigned long long)store->misses(),
                    (unsigned long long)store->rejected());
    if (!results_base.empty())
        std::printf("results:         %s.jsonl / %s.csv\n",
                    results_base.c_str(), results_base.c_str());
    if (timeline) {
        std::ofstream os(timeline_file);
        if (!os)
            fatal("cannot open '", timeline_file, "' for writing");
        timeline->writeChromeTrace(os, "oscache-bench");
        std::printf("timeline:        %zu cell spans -> %s\n",
                    timeline->size(), timeline_file.c_str());
    }
    return 0;
}
