#!/bin/sh
# Measure sampled-vs-full replay throughput on a generated trace and
# append the result to BENCH_sampling.json at the repo root.
#
# Usage: tools/bench_append.sh [build-dir] [quanta] [plan]
#
#   build-dir  build tree with oscache + oscache-sample (default: build)
#   quanta     synthetic-workload length (default: 1960, ~100M records)
#   plan       sampling plan (default: period=10m,measure=10k,warmup=100k)
#
# The trace is generated into a scratch directory, replayed sampled
# and full through `oscache-sample run --compare-full --json`, and the
# JSON line is merged into the entries array with the record count and
# trace size attached.  Requires python3 for the JSON merge.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
quanta=${2:-1960}
plan=${3:-"period=10m,measure=10k,warmup=100k"}
bench="$repo/BENCH_sampling.json"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
trace="$scratch/bench.otc"

echo "== generate (shell, quanta $quanta, chunked) =="
"$build/tools/oscache" generate --workload shell --quanta "$quanta" \
    --format chunked --out "$trace"

echo "== sampled vs full ($plan) =="
"$build/tools/oscache-sample" run --trace "$trace" --system base \
    --plan "$plan" --compare-full --json > "$scratch/result.json"

python3 - "$bench" "$scratch/result.json" "$trace" << 'EOF'
import json, os, sys, datetime

bench_path, result_path, trace_path = sys.argv[1:4]
result = json.load(open(result_path))
doc = json.load(open(bench_path))

records = result["records"]
full_s = result["wall_ms_full"] / 1000.0
sampled_s = result["wall_ms_sampled"] / 1000.0
entry = {
    "date": datetime.date.today().isoformat(),
    "host": os.uname().sysname.lower() + "-" + os.uname().machine,
    "trace_records": records,
    "trace_bytes": os.path.getsize(trace_path),
    "workload": "shell",
    "system": result["system"].lower(),
    "plan": result["plan"],
    "windows": result["windows"],
    "replayed_fraction": round(result["replayed_frac"], 4),
    "full_wall_ms": result["wall_ms_full"],
    "sampled_wall_ms": result["wall_ms_sampled"],
    "full_accesses_per_sec": int(records / full_s),
    "sampled_accesses_per_sec": int(records / sampled_s),
    "speedup": result["speedup"],
    "all_within_ci": result["all_within_ci"],
    "metrics": result["metrics"],
}
doc["entries"].append(entry)
with open(bench_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("appended: %.1fx speedup, all_within_ci=%s" %
      (entry["speedup"], entry["all_within_ci"]))
EOF
