#!/bin/sh
# Measure sampled-vs-full replay throughput on a generated trace and
# append the result to BENCH_sampling.json at the repo root.
#
# Usage: tools/bench_append.sh [build-dir] [quanta] [plan]
#        tools/bench_append.sh serve [build-dir]
#        tools/bench_append.sh perf [build-dir] [label]
#
#   build-dir  build tree with oscache + oscache-sample (default: build)
#   quanta     synthetic-workload length (default: 1960, ~100M records)
#   plan       sampling plan (default: period=10m,measure=10k,warmup=100k)
#
# The trace is generated into a scratch directory, replayed sampled
# and full through `oscache-sample run --compare-full --json`, and the
# JSON line is merged into the entries array with the record count and
# trace size attached.  Requires python3 for the JSON merge.
#
# The `serve` mode instead measures the sharded fleet: one
# oscache-served daemon per worker count (1, 2, 4), each with a cold
# result store, timed over a full smoke-suite submit from one client,
# and appends {workers -> cells/sec} scaling to BENCH_serve.json.
#
# The `perf` mode measures raw replay throughput: it configures a
# Release+LTO tree if the given build-dir has none, runs the
# bench/perf_simulator replay section (all four workloads, bare and
# checked, min-of-2 each), and appends the accesses/sec numbers to
# BENCH_perf.json — the series tools/run_checks.sh gates against.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)

if [ "${1:-}" = "perf" ]; then
    build=${2:-"$repo/build-rel"}
    label=${3:-"dev"}
    bench="$repo/BENCH_perf.json"
    scratch=$(mktemp -d)
    trap 'rm -rf "$scratch"' EXIT

    echo "== configure/build perf_simulator ($build, Release+LTO) =="
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON > /dev/null
    cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
        --target perf_simulator > /dev/null

    echo "== replay throughput (4 workloads, bare + checked) =="
    OSCACHE_BENCH_PERF_OUT="$scratch/perf.json" \
        "$build/bench/perf_simulator" --benchmark_filter=NONE \
        > /dev/null

    python3 - "$bench" "$scratch/perf.json" "$label" << 'EOF'
import json, os, sys, datetime

bench_path, perf_path, label = sys.argv[1:4]

# The perf_simulator output is only fully valid JSON when the micro
# benchmarks run; index-scan the replay array out instead of parsing
# the whole document.
text = open(perf_path).read()
i = text.index('"replay"')
j = text.index('[', i)
k = text.index(']', j)
rows = json.loads(text[j:k + 1])

doc = json.load(open(bench_path))
entry = {
    "date": datetime.date.today().isoformat(),
    "host": os.uname().sysname.lower() + "-" + os.uname().machine,
    "build": "Release+LTO",
    "label": label,
    "workloads": rows,
}
doc["entries"].append(entry)
with open(bench_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("appended: " + ", ".join(
    "%s=%.2fM acc/s" % (r["workload"], r["accesses_per_sec"] / 1e6)
    for r in rows))
EOF
    exit 0
fi

if [ "${1:-}" = "serve" ]; then
    build=${2:-"$repo/build"}
    bench="$repo/BENCH_serve.json"
    scratch=$(mktemp -d)
    trap 'rm -rf "$scratch"' EXIT

    rows="["
    sep=""
    for n in 1 2 4; do
        sock="$scratch/serve-$n.sock"
        store="$scratch/store-$n"
        "$build/tools/oscache-served" --socket "$sock" --workers "$n" \
            --store "$store" > "$scratch/daemon-$n.log" 2>&1 &
        daemon=$!
        tries=0
        until "$build/tools/oscache-servectl" --socket "$sock" \
                --quiet ping; do
            tries=$((tries + 1))
            [ "$tries" -ge 100 ] && {
                cat "$scratch/daemon-$n.log" >&2
                echo "serve bench: daemon ($n workers) never came up" >&2
                exit 1
            }
            sleep 0.2
        done

        echo "== serve: smoke suite, $n worker(s), cold store =="
        t0=$(date +%s%N)
        "$build/tools/oscache-servectl" --socket "$sock" --quiet \
            --smoke --out "$scratch/rows-$n.jsonl" submit all
        t1=$(date +%s%N)
        "$build/tools/oscache-servectl" --socket "$sock" --quiet drain
        wait "$daemon"

        cells=$(wc -l < "$scratch/rows-$n.jsonl")
        wall_ms=$(( (t1 - t0) / 1000000 ))
        echo "   $cells cells in ${wall_ms} ms"
        rows="$rows$sep{\"workers\":$n,\"cells\":$cells,\
\"wall_ms\":$wall_ms}"
        sep=","
    done
    rows="$rows]"

    python3 - "$bench" "$rows" << 'EOF'
import json, os, sys, datetime

bench_path, runs_json = sys.argv[1:3]
runs = json.loads(runs_json)
doc = json.load(open(bench_path))

entry = {
    "date": datetime.date.today().isoformat(),
    "host": os.uname().sysname.lower() + "-" + os.uname().machine,
    "suite": "smoke (all experiments)",
    "runs": [
        {
            "workers": r["workers"],
            "cells": r["cells"],
            "wall_ms": r["wall_ms"],
            "cells_per_sec": round(
                r["cells"] * 1000.0 / r["wall_ms"], 2)
            if r["wall_ms"] else 0.0,
        }
        for r in runs
    ],
}
base = entry["runs"][0]["cells_per_sec"]
for r in entry["runs"]:
    r["scaling_vs_1_worker"] = (
        round(r["cells_per_sec"] / base, 2) if base else 0.0)
doc["entries"].append(entry)
with open(bench_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("appended: " + ", ".join(
    "%dw=%.1f cells/s" % (r["workers"], r["cells_per_sec"])
    for r in entry["runs"]))
EOF
    exit 0
fi

build=${1:-"$repo/build"}
quanta=${2:-1960}
plan=${3:-"period=10m,measure=10k,warmup=100k"}
bench="$repo/BENCH_sampling.json"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
trace="$scratch/bench.otc"

echo "== generate (shell, quanta $quanta, chunked) =="
"$build/tools/oscache" generate --workload shell --quanta "$quanta" \
    --format chunked --out "$trace"

echo "== sampled vs full ($plan) =="
"$build/tools/oscache-sample" run --trace "$trace" --system base \
    --plan "$plan" --compare-full --json > "$scratch/result.json"

python3 - "$bench" "$scratch/result.json" "$trace" << 'EOF'
import json, os, sys, datetime

bench_path, result_path, trace_path = sys.argv[1:4]
result = json.load(open(result_path))
doc = json.load(open(bench_path))

records = result["records"]
full_s = result["wall_ms_full"] / 1000.0
sampled_s = result["wall_ms_sampled"] / 1000.0
entry = {
    "date": datetime.date.today().isoformat(),
    "host": os.uname().sysname.lower() + "-" + os.uname().machine,
    "trace_records": records,
    "trace_bytes": os.path.getsize(trace_path),
    "workload": "shell",
    "system": result["system"].lower(),
    "plan": result["plan"],
    "windows": result["windows"],
    "replayed_fraction": round(result["replayed_frac"], 4),
    "full_wall_ms": result["wall_ms_full"],
    "sampled_wall_ms": result["wall_ms_sampled"],
    "full_accesses_per_sec": int(records / full_s),
    "sampled_accesses_per_sec": int(records / sampled_s),
    "speedup": result["speedup"],
    "all_within_ci": result["all_within_ci"],
    "metrics": result["metrics"],
}
doc["entries"].append(entry)
with open(bench_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("appended: %.1fx speedup, all_within_ci=%s" %
      (entry["speedup"], entry["all_within_ci"]))
EOF
