/**
 * @file
 * oscache-servectl: client for a running oscache-served daemon.
 *
 *   oscache-servectl --socket S submit --smoke all
 *   oscache-servectl --socket S submit figure3 table2 --out rows.jsonl
 *   oscache-servectl --socket S submit --cell figure3:base/trfd4
 *   oscache-servectl --socket S status
 *   oscache-servectl --socket S drain
 *
 * submit streams canonical JSONL rows to --out (default stdout) as
 * cells complete; backpressure (retry-after) is honoured with a
 * bounded sleep-and-retry loop so overlapping sweeps from many
 * clients eventually all land.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "serve/client.hh"

using namespace oscache;
using namespace oscache::serve;

namespace
{

void
usage()
{
    std::printf(
        "usage: oscache-servectl [options] <command> [args]\n"
        "\n"
        "commands:\n"
        "  submit [names...]  run experiments/groups; streams JSONL\n"
        "                     rows as cells complete\n"
        "  status             print the daemon's status JSON\n"
        "  ping               check liveness (exit 0/1)\n"
        "  drain              finish in-flight jobs, stop the daemon\n"
        "\n"
        "options:\n"
        "  --socket PATH   daemon socket\n"
        "                  (default ./oscache-served.sock)\n"
        "  --out FILE      write result rows to FILE (default stdout)\n"
        "  --cell E:C      submit one explicit cell (repeatable;\n"
        "                  combines with experiment names)\n"
        "  --smoke         only each experiment's smoke cell\n"
        "  --sample PLAN   sampling plan forwarded to the workers\n"
        "  --retries N     attempts when the daemon answers\n"
        "                  retry-after (default 30)\n"
        "  --quiet         suppress progress on stderr\n"
        "  --version       print build identification and exit\n");
}

int
runSubmit(const std::string &socket_path, const SubmitRequest &request,
          const std::string &out_file, unsigned retries, bool quiet)
{
    std::ofstream file;
    std::ostream *out = &std::cout;
    if (!out_file.empty()) {
        file.open(out_file, std::ios::trunc);
        if (!file)
            fatal("cannot open '", out_file, "' for writing");
        out = &file;
    }

    for (unsigned attempt = 0;; ++attempt) {
        ServeClient client;
        std::string error;
        if (!client.connect(socket_path, &error))
            fatal("cannot connect to '", socket_path, "': ", error);

        unsigned streamed = 0;
        const SubmitOutcome outcome = client.submit(
            request, [&](const Json &event) {
                if (event.get("type").asString() == "cell") {
                    *out << event.get("row").asString() << "\n";
                    out->flush();
                    ++streamed;
                    if (!quiet)
                        std::fprintf(stderr, "  [%u] %s:%s%s\n",
                                     streamed,
                                     event.get("experiment")
                                         .asString()
                                         .c_str(),
                                     event.get("cell").asString()
                                         .c_str(),
                                     event.get("cached").asBool()
                                         ? " (cached)"
                                         : event.get("shared").asBool()
                                               ? " (shared)"
                                               : "");
                } else if (!quiet) {
                    std::fprintf(stderr, "  FAIL %s:%s: %s\n",
                                 event.get("experiment").asString()
                                     .c_str(),
                                 event.get("cell").asString().c_str(),
                                 event.get("error").asString().c_str());
                }
            });

        if (outcome.retryAfterSeconds > 0) {
            if (attempt >= retries)
                fatal("daemon still busy after ", retries, " retries");
            if (!quiet)
                std::fprintf(stderr,
                             "servectl: retry-after %us (attempt "
                             "%u/%u)\n",
                             outcome.retryAfterSeconds, attempt + 1,
                             retries);
            ::sleep(outcome.retryAfterSeconds);
            continue;
        }
        if (!outcome.error.empty())
            fatal(outcome.error);
        if (!outcome.completed)
            fatal("connection lost before job completion");
        if (!quiet)
            std::fprintf(stderr,
                         "servectl: job %llu done: %zu rows, %u "
                         "failed\n",
                         (unsigned long long)outcome.job,
                         outcome.rows.size(), outcome.cellsFailed);
        return outcome.cellsFailed == 0 ? 0 : 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "./oscache-served.sock";
    std::string out_file;
    std::string command;
    unsigned retries = 30;
    SubmitRequest request;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = value();
        } else if (arg == "--out") {
            out_file = value();
        } else if (arg == "--cell") {
            const std::string spec = value();
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos)
                fatal("--cell wants experiment:cell, got '", spec, "'");
            request.cells.emplace_back(spec.substr(0, colon),
                                       spec.substr(colon + 1));
        } else if (arg == "--smoke") {
            request.smoke = true;
        } else if (arg == "--sample") {
            request.samplePlan = value();
        } else if (arg == "--retries") {
            retries = unsigned(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--version") {
            std::printf("%s\n", versionString().c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option ", arg);
        } else if (command.empty()) {
            command = arg;
        } else {
            request.experiments.push_back(arg);
        }
    }

    if (command.empty()) {
        usage();
        return 1;
    }

    if (command == "submit") {
        if (request.experiments.empty() && request.cells.empty())
            fatal("submit needs experiment names or --cell specs");
        return runSubmit(socket_path, request, out_file, retries,
                         quiet);
    }

    ServeClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        if (command == "ping")
            return 1;
        fatal("cannot connect to '", socket_path, "': ", error);
    }

    if (command == "ping") {
        const bool ok = client.ping();
        if (!quiet)
            std::printf("%s\n", ok ? "pong" : "no reply");
        return ok ? 0 : 1;
    }
    if (command == "status") {
        const Json reply = client.status();
        if (reply.isNull())
            fatal("no status reply");
        std::printf("%s\n", reply.dump().c_str());
        return 0;
    }
    if (command == "drain") {
        if (!client.drain())
            fatal("drain failed");
        if (!quiet)
            std::printf("drained\n");
        return 0;
    }

    usage();
    fatal("unknown command '", command, "'");
}
